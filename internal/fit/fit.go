// Package fit provides the small amount of numerical curve fitting the
// paper's evaluation needs: linear least squares (via Householder QR), the
// paper's a + b·log₂(x) + c·x response model (Equation 14), and polynomial
// fitting for the Taylor-series synthesis path.
package fit

import (
	"fmt"
	"math"
)

// LeastSquares solves min ‖A·x − b‖₂ for x, where A is given as rows
// (len(rows) observations × p predictors). It uses Householder QR with
// column pivoting omitted (the design matrices here are tiny and well
// conditioned). It returns an error if the system is underdetermined
// (rows < cols) or numerically rank deficient.
func LeastSquares(rows [][]float64, b []float64) ([]float64, error) {
	n := len(rows)
	if n == 0 {
		return nil, fmt.Errorf("fit: no observations")
	}
	p := len(rows[0])
	if p == 0 {
		return nil, fmt.Errorf("fit: no predictors")
	}
	if len(b) != n {
		return nil, fmt.Errorf("fit: %d rows but %d responses", n, len(b))
	}
	if n < p {
		return nil, fmt.Errorf("fit: underdetermined system (%d rows < %d cols)", n, p)
	}
	// Working copies: a is column-major n×p, y is the response.
	a := make([][]float64, n)
	for i, row := range rows {
		if len(row) != p {
			return nil, fmt.Errorf("fit: ragged design matrix at row %d", i)
		}
		a[i] = append([]float64(nil), row...)
	}
	y := append([]float64(nil), b...)

	// Householder QR: for each column k, reflect to zero out below-diagonal.
	for k := 0; k < p; k++ {
		// norm of column k from row k down
		norm := 0.0
		for i := k; i < n; i++ {
			norm += a[i][k] * a[i][k]
		}
		norm = math.Sqrt(norm)
		if norm == 0 {
			return nil, fmt.Errorf("fit: rank-deficient design matrix (column %d)", k)
		}
		if a[k][k] > 0 {
			norm = -norm
		}
		// v = x − norm·e1, normalised so v[k] = 1 implicitly via beta.
		v := make([]float64, n-k)
		v[0] = a[k][k] - norm
		for i := k + 1; i < n; i++ {
			v[i-k] = a[i][k]
		}
		vNorm2 := 0.0
		for _, vi := range v {
			vNorm2 += vi * vi
		}
		if vNorm2 == 0 {
			continue
		}
		// Apply H = I − 2vvᵀ/‖v‖² to remaining columns and to y.
		for j := k; j < p; j++ {
			dot := 0.0
			for i := k; i < n; i++ {
				dot += v[i-k] * a[i][j]
			}
			f := 2 * dot / vNorm2
			for i := k; i < n; i++ {
				a[i][j] -= f * v[i-k]
			}
		}
		dot := 0.0
		for i := k; i < n; i++ {
			dot += v[i-k] * y[i]
		}
		f := 2 * dot / vNorm2
		for i := k; i < n; i++ {
			y[i] -= f * v[i-k]
		}
	}
	// Back-substitute R·x = Qᵀy (upper p×p block of a).
	x := make([]float64, p)
	for k := p - 1; k >= 0; k-- {
		if a[k][k] == 0 || math.Abs(a[k][k]) < 1e-12*float64(n) {
			return nil, fmt.Errorf("fit: rank-deficient design matrix (pivot %d)", k)
		}
		sum := y[k]
		for j := k + 1; j < p; j++ {
			sum -= a[k][j] * x[j]
		}
		x[k] = sum / a[k][k]
	}
	return x, nil
}

// RSquared returns the coefficient of determination of predictions vs.
// observations. It returns 1 when the observations are constant and
// perfectly predicted, and can be negative for fits worse than the mean.
func RSquared(observed, predicted []float64) float64 {
	if len(observed) != len(predicted) || len(observed) == 0 {
		panic("fit: RSquared length mismatch")
	}
	mean := 0.0
	for _, v := range observed {
		mean += v
	}
	mean /= float64(len(observed))
	ssRes, ssTot := 0.0, 0.0
	for i, v := range observed {
		d := v - predicted[i]
		ssRes += d * d
		m := v - mean
		ssTot += m * m
	}
	if ssTot == 0 {
		if ssRes == 0 {
			return 1
		}
		return math.Inf(-1)
	}
	return 1 - ssRes/ssTot
}

// LogLin is the paper's response model P = A + B·log₂(x) + C·x
// (Equation 14 has A=15, B=6, C=1/6 with P in percent).
type LogLin struct {
	A, B, C float64
	// R2 is the coefficient of determination of the fit.
	R2 float64
}

// Eval evaluates the model at x (x must be positive).
func (m LogLin) Eval(x float64) float64 {
	return m.A + m.B*math.Log2(x) + m.C*x
}

// String renders the fitted curve in the paper's form.
func (m LogLin) String() string {
	return fmt.Sprintf("%.4g + %.4g·log2(x) + %.4g·x  (R²=%.4f)", m.A, m.B, m.C, m.R2)
}

// FitLogLin fits P = A + B·log₂(x) + C·x to the data by least squares.
// All xs must be positive. It needs at least 3 points.
func FitLogLin(xs, ys []float64) (LogLin, error) {
	if len(xs) != len(ys) {
		return LogLin{}, fmt.Errorf("fit: %d xs but %d ys", len(xs), len(ys))
	}
	rows := make([][]float64, len(xs))
	for i, x := range xs {
		if x <= 0 {
			return LogLin{}, fmt.Errorf("fit: non-positive x=%v at index %d", x, i)
		}
		rows[i] = []float64{1, math.Log2(x), x}
	}
	coef, err := LeastSquares(rows, ys)
	if err != nil {
		return LogLin{}, err
	}
	m := LogLin{A: coef[0], B: coef[1], C: coef[2]}
	pred := make([]float64, len(xs))
	for i, x := range xs {
		pred[i] = m.Eval(x)
	}
	m.R2 = RSquared(ys, pred)
	return m, nil
}

// Polynomial is a polynomial in ascending-coefficient order:
// Coeffs[0] + Coeffs[1]·x + Coeffs[2]·x² + …
type Polynomial struct {
	Coeffs []float64
}

// Eval evaluates the polynomial by Horner's rule.
func (p Polynomial) Eval(x float64) float64 {
	v := 0.0
	for i := len(p.Coeffs) - 1; i >= 0; i-- {
		v = v*x + p.Coeffs[i]
	}
	return v
}

// Degree returns the polynomial degree (−1 for the empty polynomial).
func (p Polynomial) Degree() int { return len(p.Coeffs) - 1 }

// FitPolynomial fits a degree-d polynomial to the data by least squares.
func FitPolynomial(xs, ys []float64, degree int) (Polynomial, error) {
	if degree < 0 {
		return Polynomial{}, fmt.Errorf("fit: negative degree")
	}
	if len(xs) != len(ys) {
		return Polynomial{}, fmt.Errorf("fit: %d xs but %d ys", len(xs), len(ys))
	}
	rows := make([][]float64, len(xs))
	for i, x := range xs {
		row := make([]float64, degree+1)
		v := 1.0
		for j := 0; j <= degree; j++ {
			row[j] = v
			v *= x
		}
		rows[i] = row
	}
	coef, err := LeastSquares(rows, ys)
	if err != nil {
		return Polynomial{}, err
	}
	return Polynomial{Coeffs: coef}, nil
}
