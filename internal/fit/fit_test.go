package fit

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"stochsynth/internal/rng"
)

func TestLeastSquaresExact(t *testing.T) {
	// y = 2 + 3x fit from exact data.
	rows := [][]float64{{1, 0}, {1, 1}, {1, 2}, {1, 3}}
	b := []float64{2, 5, 8, 11}
	x, err := LeastSquares(rows, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-2) > 1e-10 || math.Abs(x[1]-3) > 1e-10 {
		t.Fatalf("coefficients = %v, want [2 3]", x)
	}
}

func TestLeastSquaresOverdetermined(t *testing.T) {
	// Noisy data around y = 1 + 0.5x; the fit must land near the truth.
	gen := rng.New(5)
	var rows [][]float64
	var b []float64
	for i := 0; i < 500; i++ {
		x := float64(i) / 10
		rows = append(rows, []float64{1, x})
		b = append(b, 1+0.5*x+gen.Normal(0, 0.1))
	}
	coef, err := LeastSquares(rows, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(coef[0]-1) > 0.05 || math.Abs(coef[1]-0.5) > 0.005 {
		t.Fatalf("coefficients = %v, want ~[1 0.5]", coef)
	}
}

func TestLeastSquaresErrors(t *testing.T) {
	if _, err := LeastSquares(nil, nil); err == nil {
		t.Error("empty system accepted")
	}
	if _, err := LeastSquares([][]float64{{1, 2}}, []float64{1}); err == nil {
		t.Error("underdetermined system accepted")
	}
	if _, err := LeastSquares([][]float64{{1}, {2}}, []float64{1}); err == nil {
		t.Error("mismatched responses accepted")
	}
	if _, err := LeastSquares([][]float64{{1, 2}, {3}}, []float64{1, 2}); err == nil {
		t.Error("ragged matrix accepted")
	}
	// Rank-deficient: two identical columns.
	rows := [][]float64{{1, 1}, {2, 2}, {3, 3}}
	if _, err := LeastSquares(rows, []float64{1, 2, 3}); err == nil {
		t.Error("rank-deficient matrix accepted")
	}
	// Zero column.
	rows = [][]float64{{0, 1}, {0, 2}, {0, 3}}
	if _, err := LeastSquares(rows, []float64{1, 2, 3}); err == nil {
		t.Error("zero column accepted")
	}
}

func TestFitLogLinRecoversEquation14(t *testing.T) {
	// Sample the paper's Equation 14 exactly and refit: coefficients must
	// come back as (15, 6, 1/6).
	truth := LogLin{A: 15, B: 6, C: 1.0 / 6}
	var xs, ys []float64
	for moi := 1; moi <= 10; moi++ {
		xs = append(xs, float64(moi))
		ys = append(ys, truth.Eval(float64(moi)))
	}
	m, err := FitLogLin(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.A-15) > 1e-8 || math.Abs(m.B-6) > 1e-8 || math.Abs(m.C-1.0/6) > 1e-8 {
		t.Fatalf("fit = %+v, want (15, 6, 1/6)", m)
	}
	if m.R2 < 1-1e-12 {
		t.Fatalf("R² = %v, want 1", m.R2)
	}
}

func TestFitLogLinWithBinomialNoise(t *testing.T) {
	// Eq. 14 sampled through binomial noise at n=10000 (like a Monte Carlo
	// estimate with 10k trials) must still recover the coefficients well.
	truth := LogLin{A: 15, B: 6, C: 1.0 / 6}
	gen := rng.New(77)
	var xs, ys []float64
	for moi := 1; moi <= 10; moi++ {
		p := truth.Eval(float64(moi)) / 100
		hits := gen.Binomial(10000, p)
		xs = append(xs, float64(moi))
		ys = append(ys, 100*float64(hits)/10000)
	}
	m, err := FitLogLin(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.A-15) > 1.5 || math.Abs(m.B-6) > 1.5 || math.Abs(m.C-1.0/6) > 0.3 {
		t.Fatalf("noisy fit = %+v, want ≈(15, 6, 0.167)", m)
	}
	if m.R2 < 0.98 {
		t.Fatalf("R² = %v", m.R2)
	}
}

func TestFitLogLinRejectsBadInput(t *testing.T) {
	if _, err := FitLogLin([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := FitLogLin([]float64{0, 1, 2}, []float64{1, 2, 3}); err == nil {
		t.Error("x=0 accepted (log2 undefined)")
	}
}

func TestLogLinString(t *testing.T) {
	s := LogLin{A: 15, B: 6, C: 0.1667, R2: 0.99}.String()
	for _, frag := range []string{"15", "log2", "R²"} {
		if !strings.Contains(s, frag) {
			t.Errorf("String() = %q lacks %q", s, frag)
		}
	}
}

func TestFitPolynomialExact(t *testing.T) {
	// y = 1 − 2x + x² from exact samples.
	var xs, ys []float64
	for i := -3; i <= 3; i++ {
		x := float64(i)
		xs = append(xs, x)
		ys = append(ys, 1-2*x+x*x)
	}
	p, err := FitPolynomial(xs, ys, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, -2, 1}
	for i, w := range want {
		if math.Abs(p.Coeffs[i]-w) > 1e-9 {
			t.Fatalf("coeffs = %v, want %v", p.Coeffs, want)
		}
	}
	if p.Degree() != 2 {
		t.Fatalf("degree = %d", p.Degree())
	}
}

func TestFitPolynomialErrors(t *testing.T) {
	if _, err := FitPolynomial([]float64{1}, []float64{1}, -1); err == nil {
		t.Error("negative degree accepted")
	}
	if _, err := FitPolynomial([]float64{1}, []float64{1, 2}, 1); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestPolynomialEvalHorner(t *testing.T) {
	p := Polynomial{Coeffs: []float64{1, 0, 2}} // 1 + 2x²
	if got := p.Eval(3); got != 19 {
		t.Fatalf("Eval(3) = %v, want 19", got)
	}
	empty := Polynomial{}
	if empty.Eval(5) != 0 || empty.Degree() != -1 {
		t.Fatal("empty polynomial misbehaves")
	}
}

func TestRSquaredPerfectAndPoor(t *testing.T) {
	obs := []float64{1, 2, 3}
	if got := RSquared(obs, []float64{1, 2, 3}); got != 1 {
		t.Fatalf("perfect fit R² = %v", got)
	}
	if got := RSquared(obs, []float64{2, 2, 2}); got != 0 {
		t.Fatalf("mean-predictor R² = %v, want 0", got)
	}
	if got := RSquared(obs, []float64{3, 2, 1}); got >= 0 {
		t.Fatalf("anti-fit R² = %v, want negative", got)
	}
}

func TestRSquaredPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on length mismatch")
		}
	}()
	RSquared([]float64{1}, []float64{1, 2})
}

func TestLeastSquaresRoundTripProperty(t *testing.T) {
	// For random well-conditioned 2-predictor systems built from known
	// coefficients, LeastSquares must recover them.
	gen := rng.New(123)
	f := func(c0x, c1x int8) bool {
		c0 := float64(c0x) / 8
		c1 := float64(c1x) / 8
		var rows [][]float64
		var b []float64
		for i := 0; i < 12; i++ {
			x := float64(i) + gen.Float64()
			rows = append(rows, []float64{1, x})
			b = append(b, c0+c1*x)
		}
		got, err := LeastSquares(rows, b)
		if err != nil {
			return false
		}
		return math.Abs(got[0]-c0) < 1e-6 && math.Abs(got[1]-c1) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
