package rng

// Alias is a Walker/Vose alias table for O(1) sampling from a fixed discrete
// distribution. Construction is O(n); each Sample costs one uniform draw and
// one comparison, which matters when a Monte Carlo harness classifies
// millions of outcomes against the same distribution.
type Alias struct {
	prob  []float64 // acceptance probability per column
	alias []int     // fallback index per column
}

// NewAlias builds an alias table from the given weights. Negative weights are
// treated as zero. It panics if the total weight is not positive.
func NewAlias(weights []float64) *Alias {
	n := len(weights)
	total := 0.0
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		panic("rng: NewAlias with non-positive total weight")
	}
	a := &Alias{prob: make([]float64, n), alias: make([]int, n)}
	// Scale so the average column is exactly 1.
	scaled := make([]float64, n)
	small := make([]int, 0, n)
	large := make([]int, 0, n)
	for i, w := range weights {
		if w < 0 {
			w = 0
		}
		scaled[i] = w * float64(n) / total
		if scaled[i] < 1 {
			small = append(small, i)
		} else {
			large = append(large, i)
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		large = large[:len(large)-1]
		a.prob[s] = scaled[s]
		a.alias[s] = l
		scaled[l] -= 1 - scaled[s]
		if scaled[l] < 1 {
			small = append(small, l)
		} else {
			large = append(large, l)
		}
	}
	// Numerical leftovers land exactly at probability 1.
	for _, i := range large {
		a.prob[i] = 1
		a.alias[i] = i
	}
	for _, i := range small {
		a.prob[i] = 1
		a.alias[i] = i
	}
	return a
}

// N returns the number of categories in the table.
func (a *Alias) N() int { return len(a.prob) }

// Sample draws one index from the distribution using generator p.
func (a *Alias) Sample(p *PCG) int {
	u := p.Float64() * float64(len(a.prob))
	i := int(u)
	if i >= len(a.prob) { // guards the u == n edge from rounding
		i = len(a.prob) - 1
	}
	frac := u - float64(i)
	if frac < a.prob[i] {
		return i
	}
	return a.alias[i]
}
