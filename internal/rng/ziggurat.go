package rng

import "math"

// Ziggurat sampler for the standard exponential distribution (Marsaglia &
// Tsang, "The Ziggurat Method for Generating Random Variables", 2000),
// widened to 64-bit draws: the low 8 bits of one Uint64 pick a layer, the
// high 56 bits supply the magnitude. The fast path — about 98.9% of draws —
// costs one Uint64, one multiply and one compare, with no transcendental
// call. Exp is the stochastic simulation algorithm's waiting-time sampler,
// consumed once per reaction event, so this is one of the hottest functions
// in the module.
//
// Layer construction: with N = 256 layers of common area v under
// f(x) = e^{-x}, x_255 = r is chosen so that r·f(r) plus the tail area
// e^{-r} equals v, and successive edges satisfy
// x_{i-1} = -ln(f(x_i) + v/x_i). Layer 0 is the base strip of width
// q = v/f(r), whose portion beyond r maps to the analytic tail
// r + Exp(1).

const (
	zigExpR = 7.69711747013104972      // x_255: right edge of the top table layer
	zigExpV = 3.9496598225815571993e-3 // common layer area: r·e^{-r} + e^{-r}
	zigExpM = 1 << 56                  // magnitude resolution (high 56 bits)
)

var (
	zigExpK [256]uint64  // accept magnitude j immediately when j < zigExpK[i]
	zigExpW [256]float64 // candidate x = j·zigExpW[i]
	zigExpF [256]float64 // f(x_i) = e^{-x_i}, for the rejection test
)

func init() {
	f := math.Exp(-zigExpR)
	q := zigExpV / f // width of the base strip

	zigExpK[0] = uint64(zigExpR / q * zigExpM)
	zigExpK[1] = 0 // layer 1 always takes the rejection test (x_0 ≈ 0)
	zigExpW[0] = q / zigExpM
	zigExpW[255] = zigExpR / zigExpM
	zigExpF[0] = 1
	zigExpF[255] = f

	x, prev := zigExpR, zigExpR
	for i := 254; i >= 1; i-- {
		x = -math.Log(zigExpV/x + math.Exp(-x))
		zigExpK[i+1] = uint64(x / prev * zigExpM)
		prev = x
		zigExpF[i] = math.Exp(-x)
		zigExpW[i] = x / zigExpM
	}

	// Construction self-check (mirrors the binomialFloat init check in
	// package chem): the recurrence must close — the bottom layer
	// [0, x_1] × [f(x_1), 1] must itself have area v, which pins r.
	if math.Abs(x*(1-math.Exp(-x))-zigExpV) > 1e-8 {
		panic("rng: ziggurat exponential table construction failed")
	}
	for i := 1; i < 256; i++ {
		if zigExpF[i] >= zigExpF[i-1] || zigExpW[i] <= 0 {
			panic("rng: ziggurat exponential table not monotone")
		}
	}
}

// expZig returns a standard (rate 1) exponential variate by the ziggurat
// method.
func (p *PCG) expZig() float64 {
	for {
		u := p.Uint64()
		i := u & 255
		j := u >> 8
		x := float64(j) * zigExpW[i]
		if j < zigExpK[i] {
			return x // inside the sure-accept rectangle
		}
		if i == 0 {
			// Base strip beyond r: the exponential tail is itself
			// exponential (memorylessness), shifted by r.
			return zigExpR - math.Log(p.Float64Open())
		}
		// Wedge between the rectangle and the curve: accept against the
		// true density.
		if zigExpF[i]+p.Float64()*(zigExpF[i-1]-zigExpF[i]) < math.Exp(-x) {
			return x
		}
	}
}
