package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestExpMean(t *testing.T) {
	p := New(21)
	for _, rate := range []float64{0.1, 1, 5, 1000} {
		const n = 100000
		sum := 0.0
		for i := 0; i < n; i++ {
			sum += p.Exp(rate)
		}
		mean := sum / n
		want := 1 / rate
		// stderr of exponential mean = want/sqrt(n); allow 6 sigma.
		if math.Abs(mean-want) > 6*want/math.Sqrt(n) {
			t.Errorf("Exp(%v) mean = %v, want ~%v", rate, mean, want)
		}
	}
}

func TestExpPositive(t *testing.T) {
	p := New(22)
	for i := 0; i < 100000; i++ {
		if v := p.Exp(3.5); v < 0 || math.IsInf(v, 0) || math.IsNaN(v) {
			t.Fatalf("Exp produced invalid value %v", v)
		}
	}
}

func TestExpPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Exp(0) did not panic")
		}
	}()
	New(1).Exp(0)
}

func TestNormalMoments(t *testing.T) {
	p := New(23)
	const n = 200000
	const mean, sd = 3.0, 2.0
	sum, sumsq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := p.Normal(mean, sd)
		sum += v
		sumsq += v * v
	}
	m := sum / n
	variance := sumsq/n - m*m
	if math.Abs(m-mean) > 6*sd/math.Sqrt(n) {
		t.Errorf("Normal mean = %v, want ~%v", m, mean)
	}
	if math.Abs(variance-sd*sd) > 0.1 {
		t.Errorf("Normal variance = %v, want ~%v", variance, sd*sd)
	}
}

func TestDiscreteDistribution(t *testing.T) {
	p := New(24)
	weights := []float64{3, 4, 3}
	const n = 100000
	counts := make([]int, len(weights))
	for i := 0; i < n; i++ {
		counts[p.Discrete(weights)]++
	}
	for i, w := range weights {
		want := w / 10 * n
		sd := math.Sqrt(want * (1 - w/10))
		if math.Abs(float64(counts[i])-want) > 6*sd {
			t.Errorf("outcome %d: %d draws, want ~%v", i, counts[i], want)
		}
	}
}

func TestDiscreteSkipsZeroAndNegative(t *testing.T) {
	p := New(25)
	weights := []float64{0, 5, -2, 0, 5}
	for i := 0; i < 10000; i++ {
		got := p.Discrete(weights)
		if got != 1 && got != 4 {
			t.Fatalf("Discrete chose zero/negative-weight index %d", got)
		}
	}
}

func TestDiscretePanicsOnZeroTotal(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Discrete with zero total did not panic")
		}
	}()
	New(1).Discrete([]float64{0, 0})
}

func TestPoissonMean(t *testing.T) {
	p := New(26)
	for _, mean := range []float64{0.1, 1, 5, 25, 100, 1000} {
		const n = 50000
		var sum float64
		for i := 0; i < n; i++ {
			sum += float64(p.Poisson(mean))
		}
		got := sum / n
		tol := 6 * math.Sqrt(mean/n)
		if mean >= 30 {
			tol += 0.5 // continuity correction bias allowance
		}
		if math.Abs(got-mean) > tol {
			t.Errorf("Poisson(%v) mean = %v", mean, got)
		}
	}
}

func TestPoissonZero(t *testing.T) {
	p := New(27)
	if v := p.Poisson(0); v != 0 {
		t.Fatalf("Poisson(0) = %d, want 0", v)
	}
}

func TestPoissonNonNegativeProperty(t *testing.T) {
	p := New(28)
	f := func(mean8 uint8) bool {
		return p.Poisson(float64(mean8)) >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBinomialMean(t *testing.T) {
	p := New(29)
	cases := []struct {
		n    int64
		prob float64
	}{{10, 0.5}, {100, 0.3}, {1000, 0.01}, {100000, 0.4}}
	for _, c := range cases {
		const trials = 20000
		var sum float64
		for i := 0; i < trials; i++ {
			sum += float64(p.Binomial(c.n, c.prob))
		}
		got := sum / trials
		want := float64(c.n) * c.prob
		sd := math.Sqrt(want * (1 - c.prob))
		if math.Abs(got-want) > 6*sd/math.Sqrt(trials)+0.5 {
			t.Errorf("Binomial(%d,%v) mean = %v, want ~%v", c.n, c.prob, got, want)
		}
	}
}

func TestBinomialBoundsProperty(t *testing.T) {
	p := New(30)
	f := func(n16 uint16, probRaw uint8) bool {
		n := int64(n16 % 2000)
		prob := float64(probRaw) / 255
		k := p.Binomial(n, prob)
		return k >= 0 && k <= n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestBinomialEdges(t *testing.T) {
	p := New(31)
	if v := p.Binomial(0, 0.5); v != 0 {
		t.Errorf("Binomial(0,·) = %d", v)
	}
	if v := p.Binomial(50, 0); v != 0 {
		t.Errorf("Binomial(·,0) = %d", v)
	}
	if v := p.Binomial(50, 1); v != 50 {
		t.Errorf("Binomial(50,1) = %d", v)
	}
}

func TestPermIsPermutation(t *testing.T) {
	p := New(32)
	for _, n := range []int{0, 1, 2, 10, 100} {
		perm := p.Perm(n)
		if len(perm) != n {
			t.Fatalf("Perm(%d) length %d", n, len(perm))
		}
		seen := make([]bool, n)
		for _, v := range perm {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, perm)
			}
			seen[v] = true
		}
	}
}

func TestShuffleUniformity(t *testing.T) {
	p := New(33)
	// All 6 permutations of 3 elements should be ~equally likely.
	counts := map[[3]int]int{}
	const n = 60000
	for i := 0; i < n; i++ {
		arr := [3]int{0, 1, 2}
		p.Shuffle(3, func(i, j int) { arr[i], arr[j] = arr[j], arr[i] })
		counts[arr]++
	}
	if len(counts) != 6 {
		t.Fatalf("saw %d permutations, want 6", len(counts))
	}
	for perm, c := range counts {
		if math.Abs(float64(c)-n/6) > 6*math.Sqrt(n/6) {
			t.Errorf("perm %v: %d draws, want ~%d", perm, c, n/6)
		}
	}
}
