package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestExpMean(t *testing.T) {
	p := New(21)
	for _, rate := range []float64{0.1, 1, 5, 1000} {
		const n = 100000
		sum := 0.0
		for i := 0; i < n; i++ {
			sum += p.Exp(rate)
		}
		mean := sum / n
		want := 1 / rate
		// stderr of exponential mean = want/sqrt(n); allow 6 sigma.
		if math.Abs(mean-want) > 6*want/math.Sqrt(n) {
			t.Errorf("Exp(%v) mean = %v, want ~%v", rate, mean, want)
		}
	}
}

func TestExpPositive(t *testing.T) {
	p := New(22)
	for i := 0; i < 100000; i++ {
		if v := p.Exp(3.5); v < 0 || math.IsInf(v, 0) || math.IsNaN(v) {
			t.Fatalf("Exp produced invalid value %v", v)
		}
	}
}

func TestExpPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Exp(0) did not panic")
		}
	}()
	New(1).Exp(0)
}

func TestNormalMoments(t *testing.T) {
	p := New(23)
	const n = 200000
	const mean, sd = 3.0, 2.0
	sum, sumsq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := p.Normal(mean, sd)
		sum += v
		sumsq += v * v
	}
	m := sum / n
	variance := sumsq/n - m*m
	if math.Abs(m-mean) > 6*sd/math.Sqrt(n) {
		t.Errorf("Normal mean = %v, want ~%v", m, mean)
	}
	if math.Abs(variance-sd*sd) > 0.1 {
		t.Errorf("Normal variance = %v, want ~%v", variance, sd*sd)
	}
}

func TestDiscreteDistribution(t *testing.T) {
	p := New(24)
	weights := []float64{3, 4, 3}
	const n = 100000
	counts := make([]int, len(weights))
	for i := 0; i < n; i++ {
		counts[p.Discrete(weights)]++
	}
	for i, w := range weights {
		want := w / 10 * n
		sd := math.Sqrt(want * (1 - w/10))
		if math.Abs(float64(counts[i])-want) > 6*sd {
			t.Errorf("outcome %d: %d draws, want ~%v", i, counts[i], want)
		}
	}
}

func TestDiscreteSkipsZeroAndNegative(t *testing.T) {
	p := New(25)
	weights := []float64{0, 5, -2, 0, 5}
	for i := 0; i < 10000; i++ {
		got := p.Discrete(weights)
		if got != 1 && got != 4 {
			t.Fatalf("Discrete chose zero/negative-weight index %d", got)
		}
	}
}

func TestDiscretePanicsOnZeroTotal(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Discrete with zero total did not panic")
		}
	}()
	New(1).Discrete([]float64{0, 0})
}

func TestPoissonMean(t *testing.T) {
	p := New(26)
	for _, mean := range []float64{0.1, 1, 5, 25, 100, 1000} {
		const n = 50000
		var sum float64
		for i := 0; i < n; i++ {
			sum += float64(p.Poisson(mean))
		}
		got := sum / n
		// PTRS samples the exact distribution, so no bias allowance is
		// needed at any mean.
		if tol := 6 * math.Sqrt(mean/n); math.Abs(got-mean) > tol {
			t.Errorf("Poisson(%v) mean = %v", mean, got)
		}
	}
}

// poissonCellProbs returns the exact probabilities of the bins
// (-inf, b0), [b0, b1), ..., [bLast, +inf) under Poisson(mean), summing the
// pmf term by term over a +-8 sigma window.
func poissonCellProbs(mean float64, bounds []int64) []float64 {
	lo := int64(mean - 8*math.Sqrt(mean))
	if lo < 0 {
		lo = 0
	}
	hi := int64(mean+8*math.Sqrt(mean)) + 2
	logMean := math.Log(mean)
	probs := make([]float64, len(bounds)+1)
	cell := 0
	for k := lo; k <= hi; k++ {
		for cell < len(bounds) && k >= bounds[cell] {
			cell++
		}
		lg, _ := math.Lgamma(float64(k) + 1)
		probs[cell] += math.Exp(float64(k)*logMean - mean - lg)
	}
	// Fold the mass outside the window into the edge cells so the
	// probabilities sum to 1.
	var total float64
	for _, p := range probs {
		total += p
	}
	probs[0] += (1 - total) / 2
	probs[len(probs)-1] += (1 - total) / 2
	return probs
}

// TestPoissonLargeMeanDistribution pins the PTRS regression: at means >= 30
// the sampler must follow the true Poisson law, including the skewed tails
// the old rounded-normal branch flattened. Pearson chi-square over bins at
// mean + z*sqrt(mean), z in -2..2, significance 0.001.
func TestPoissonLargeMeanDistribution(t *testing.T) {
	const n = 60000
	const crit999df9 = 27.877
	p := New(35)
	for _, mean := range []float64{30, 100, 1e4} {
		sd := math.Sqrt(mean)
		var bounds []int64
		for z := -2.0; z <= 2.01; z += 0.5 {
			bounds = append(bounds, int64(math.Ceil(mean+z*sd)))
		}
		probs := poissonCellProbs(mean, bounds)
		counts := make([]int64, len(probs))
		for i := 0; i < n; i++ {
			k := p.Poisson(mean)
			cell := 0
			for cell < len(bounds) && k >= bounds[cell] {
				cell++
			}
			counts[cell]++
		}
		stat := 0.0
		for i, c := range counts {
			expected := probs[i] * n
			if expected < 5 {
				t.Fatalf("mean %v: cell %d expected %.2f < 5; rebin", mean, i, expected)
			}
			d := float64(c) - expected
			stat += d * d / expected
		}
		if stat > crit999df9 {
			t.Errorf("Poisson(%v): chi2 = %.2f > %.2f (df=9, p=0.001)\ncounts: %v",
				mean, stat, crit999df9, counts)
		} else {
			t.Logf("Poisson(%v): chi2 = %.2f (crit %.2f)", mean, stat, crit999df9)
		}
	}
}

func TestPoissonZero(t *testing.T) {
	p := New(27)
	if v := p.Poisson(0); v != 0 {
		t.Fatalf("Poisson(0) = %d, want 0", v)
	}
}

func TestPoissonNonNegativeProperty(t *testing.T) {
	p := New(28)
	f := func(mean8 uint8) bool {
		return p.Poisson(float64(mean8)) >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBinomialMean(t *testing.T) {
	p := New(29)
	cases := []struct {
		n    int64
		prob float64
	}{{10, 0.5}, {100, 0.3}, {1000, 0.01}, {100000, 0.4}}
	for _, c := range cases {
		const trials = 20000
		var sum float64
		for i := 0; i < trials; i++ {
			sum += float64(p.Binomial(c.n, c.prob))
		}
		got := sum / trials
		want := float64(c.n) * c.prob
		sd := math.Sqrt(want * (1 - c.prob))
		if math.Abs(got-want) > 6*sd/math.Sqrt(trials)+0.5 {
			t.Errorf("Binomial(%d,%v) mean = %v, want ~%v", c.n, c.prob, got, want)
		}
	}
}

// TestBinomialSparseDistribution exercises the geometric skip-sampling path
// (large n, few expected successes or failures) against the exact binomial
// pmf with a chi-square test at significance 0.001.
func TestBinomialSparseDistribution(t *testing.T) {
	p := New(37)
	const n = 40000
	cases := []struct {
		trials int64
		prob   float64
	}{
		{100000, 3e-5}, // mean 3 successes: success-skip path
		{100000, 1 - 3e-5},
	}
	for _, c := range cases {
		// Bin the count of rare events (successes or failures) at 0..6, 7+.
		rare := func(k int64) int64 {
			if c.prob > 0.5 {
				return c.trials - k
			}
			return k
		}
		pRare := math.Min(c.prob, 1-c.prob)
		probs := make([]float64, 9)
		lgN, _ := math.Lgamma(float64(c.trials) + 1)
		for k := int64(0); k <= 7; k++ {
			lgK, _ := math.Lgamma(float64(k) + 1)
			lgNK, _ := math.Lgamma(float64(c.trials-k) + 1)
			probs[k] = math.Exp(lgN - lgK - lgNK +
				float64(k)*math.Log(pRare) + float64(c.trials-k)*math.Log1p(-pRare))
		}
		var tail float64
		for _, q := range probs[:8] {
			tail += q
		}
		probs[8] = 1 - tail
		counts := make([]int64, 9)
		for i := 0; i < n; i++ {
			k := rare(p.Binomial(c.trials, c.prob))
			if k > 8 {
				k = 8
			}
			if k >= 7 {
				counts[8]++ // 7+ merged with the open tail cell
			} else {
				counts[k]++
			}
		}
		probs[8] += probs[7]
		probs[7] = 0
		stat := 0.0
		for i, cnt := range counts {
			expected := probs[i] * n
			if i == 7 {
				continue
			}
			if expected < 5 {
				t.Fatalf("cell %d expected %.2f < 5; rebin", i, expected)
			}
			d := float64(cnt) - expected
			stat += d * d / expected
		}
		const crit999df7 = 24.322
		if stat > crit999df7 {
			t.Errorf("Binomial(%d, %v): chi2 = %.2f > %.2f\ncounts %v",
				c.trials, c.prob, stat, crit999df7, counts)
		} else {
			t.Logf("Binomial(%d, %v): chi2 = %.2f (crit %.2f)", c.trials, c.prob, stat, crit999df7)
		}
	}
}

// TestBinomialBTRSDistribution pins the large-n exact sampler (Hörmann's
// BTRS, replacing the old rounded normal whose missing skew biased the
// hybrid relay propagator's survivor counts): chi-square against the
// exact binomial pmf, binned at mean + z·sd, significance 0.001.
func TestBinomialBTRSDistribution(t *testing.T) {
	p := New(39)
	const n = 60000
	cases := []struct {
		trials int64
		prob   float64
	}{
		{2000, 0.018}, // the relay-survivor regime: mean 36, strong skew
		{500, 0.5},    // symmetric mid regime
		{300, 0.9},    // mirrored branch (n - BTRS(1-p))
	}
	for _, c := range cases {
		nf := float64(c.trials)
		mean := nf * c.prob
		sd := math.Sqrt(mean * (1 - c.prob))
		var bounds []int64
		for z := -2.0; z <= 2.01; z += 0.5 {
			bounds = append(bounds, int64(math.Ceil(mean+z*sd)))
		}
		probs := make([]float64, len(bounds)+1)
		lgN, _ := math.Lgamma(nf + 1)
		for k := int64(0); k <= c.trials; k++ {
			cell := 0
			for cell < len(bounds) && k >= bounds[cell] {
				cell++
			}
			lgK, _ := math.Lgamma(float64(k) + 1)
			lgNK, _ := math.Lgamma(nf - float64(k) + 1)
			probs[cell] += math.Exp(lgN - lgK - lgNK +
				float64(k)*math.Log(c.prob) + (nf-float64(k))*math.Log1p(-c.prob))
		}
		counts := make([]int64, len(probs))
		for i := 0; i < n; i++ {
			k := p.Binomial(c.trials, c.prob)
			cell := 0
			for cell < len(bounds) && k >= bounds[cell] {
				cell++
			}
			counts[cell]++
		}
		stat := 0.0
		for i, cnt := range counts {
			expected := probs[i] * n
			if expected < 5 {
				t.Fatalf("Binomial(%d,%v): cell %d expected %.2f < 5; rebin", c.trials, c.prob, i, expected)
			}
			d := float64(cnt) - expected
			stat += d * d / expected
		}
		const crit999df9 = 27.877
		if stat > crit999df9 {
			t.Errorf("Binomial(%d, %v): chi2 = %.2f > %.2f\ncounts %v",
				c.trials, c.prob, stat, crit999df9, counts)
		} else {
			t.Logf("Binomial(%d, %v): chi2 = %.2f (crit %.2f)", c.trials, c.prob, stat, crit999df9)
		}
	}
}

func TestBinomialBoundsProperty(t *testing.T) {
	p := New(30)
	f := func(n16 uint16, probRaw uint8) bool {
		n := int64(n16 % 2000)
		prob := float64(probRaw) / 255
		k := p.Binomial(n, prob)
		return k >= 0 && k <= n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestBinomialEdges(t *testing.T) {
	p := New(31)
	if v := p.Binomial(0, 0.5); v != 0 {
		t.Errorf("Binomial(0,·) = %d", v)
	}
	if v := p.Binomial(50, 0); v != 0 {
		t.Errorf("Binomial(·,0) = %d", v)
	}
	if v := p.Binomial(50, 1); v != 50 {
		t.Errorf("Binomial(50,1) = %d", v)
	}
}

func TestPermIsPermutation(t *testing.T) {
	p := New(32)
	for _, n := range []int{0, 1, 2, 10, 100} {
		perm := p.Perm(n)
		if len(perm) != n {
			t.Fatalf("Perm(%d) length %d", n, len(perm))
		}
		seen := make([]bool, n)
		for _, v := range perm {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, perm)
			}
			seen[v] = true
		}
	}
}

func TestShuffleUniformity(t *testing.T) {
	p := New(33)
	// All 6 permutations of 3 elements should be ~equally likely.
	counts := map[[3]int]int{}
	const n = 60000
	for i := 0; i < n; i++ {
		arr := [3]int{0, 1, 2}
		p.Shuffle(3, func(i, j int) { arr[i], arr[j] = arr[j], arr[i] })
		counts[arr]++
	}
	if len(counts) != 6 {
		t.Fatalf("saw %d permutations, want 6", len(counts))
	}
	for perm, c := range counts {
		if math.Abs(float64(c)-n/6) > 6*math.Sqrt(n/6) {
			t.Errorf("perm %v: %d draws, want ~%d", perm, c, n/6)
		}
	}
}
