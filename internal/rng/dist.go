package rng

import "math"

// Exp returns an exponentially distributed variate with the given rate
// (mean 1/rate). It panics if rate <= 0. This is the inter-event time
// distribution of the stochastic simulation algorithm; it is sampled by the
// ziggurat method (see ziggurat.go), which avoids a logarithm on ~99% of
// draws.
func (p *PCG) Exp(rate float64) float64 {
	if rate <= 0 {
		panic("rng: Exp with rate <= 0")
	}
	return p.expZig() / rate
}

// Normal returns a normally distributed variate with the given mean and
// standard deviation, using the Marsaglia polar method.
func (p *PCG) Normal(mean, stddev float64) float64 {
	for {
		u := 2*p.Float64() - 1
		v := 2*p.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return mean + stddev*u*math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// Discrete samples an index i with probability weights[i] / sum(weights).
// Negative weights are treated as zero. It panics if the total weight is not
// positive. For repeated sampling from the same weights prefer NewAlias.
func (p *PCG) Discrete(weights []float64) int {
	total := 0.0
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 || math.IsNaN(total) || math.IsInf(total, 0) {
		panic("rng: Discrete with non-positive or non-finite total weight")
	}
	target := p.Float64() * total
	acc := 0.0
	last := -1
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		acc += w
		last = i
		if target < acc {
			return i
		}
	}
	// Floating-point slack: fall back to the final positive-weight index.
	return last
}

// Poisson returns a Poisson-distributed variate with the given mean.
// It panics if mean < 0. Small means use Knuth's product method; large means
// use Hörmann's PTRS transformed-rejection sampler, which draws from the
// true Poisson distribution at every mean (a rounded normal, used here
// previously, has no skew and a truncated left tail — visible bias in
// tau-leap counts).
func (p *PCG) Poisson(mean float64) int64 {
	switch {
	case mean < 0 || math.IsNaN(mean):
		panic("rng: Poisson with negative or NaN mean")
	case mean == 0:
		return 0
	case mean < 30:
		limit := math.Exp(-mean)
		prod := p.Float64()
		var n int64
		for prod > limit {
			n++
			prod *= p.Float64()
		}
		return n
	default:
		return p.poissonPTRS(mean)
	}
}

// poissonPTRS samples Poisson(mean) by transformed rejection with squeeze
// (Hörmann 1993, "The transformed rejection method for generating Poisson
// random variables", algorithm PTRS). Valid for mean >= 10; used for
// mean >= 30 where Knuth's product method starts to need many uniforms and
// underflows exp(-mean). Exact: the accepted k follows the true Poisson law.
func (p *PCG) poissonPTRS(mean float64) int64 {
	smu := math.Sqrt(mean)
	b := 0.931 + 2.53*smu
	a := -0.059 + 0.02483*b
	invAlpha := 1.1239 + 1.1328/(b-3.4)
	vr := 0.9277 - 3.6224/(b-2)
	logMean := math.Log(mean)
	for {
		u := p.Float64() - 0.5
		v := p.Float64()
		us := 0.5 - math.Abs(u)
		k := math.Floor((2*a/us+b)*u + mean + 0.43)
		if us >= 0.07 && v <= vr {
			return int64(k)
		}
		if k < 0 || (us < 0.013 && v > us) {
			continue
		}
		lg, _ := math.Lgamma(k + 1)
		if math.Log(v*invAlpha/(a/(us*us)+b)) <= k*logMean-mean-lg {
			return int64(k)
		}
	}
}

// Binomial returns the number of successes in n independent trials each
// succeeding with probability prob. It panics if n < 0 or prob is outside
// [0, 1]. Every regime samples the exact distribution: small n uses direct
// inversion; large n with few expected successes (or failures) uses
// geometric skip-sampling in O(min(np, n(1-p)) + 1); the remaining
// large-n regime uses Hörmann's BTRS transformed rejection. The
// skip-sampling path is what the hybrid engine's relay propagator leans
// on: Binomial(10⁴ births, survival ≈ 10⁻¹⁰) must cost O(1), not O(n) —
// and the relay's exactness claim is why no regime may approximate.
func (p *PCG) Binomial(n int64, prob float64) int64 {
	if n < 0 || prob < 0 || prob > 1 || math.IsNaN(prob) {
		panic("rng: Binomial with invalid parameters")
	}
	if n == 0 || prob == 0 {
		return 0
	}
	if prob == 1 {
		return n
	}
	if n <= 64 {
		var k int64
		for i := int64(0); i < n; i++ {
			if p.Float64() < prob {
				k++
			}
		}
		return k
	}
	mean := float64(n) * prob
	switch {
	case mean < 16:
		return p.binomialSkip(n, prob)
	case float64(n)*(1-prob) < 16:
		return n - p.binomialSkip(n, 1-prob)
	case prob <= 0.5:
		return p.binomialBTRS(n, prob)
	default:
		return n - p.binomialBTRS(n, 1-prob)
	}
}

// binomialBTRS samples Binomial(n, prob) for prob <= 0.5 with
// n·prob >= 10 by transformed rejection with squeeze (Hörmann 1993, "The
// generation of binomial random variates", algorithm BTRS). Exact: the
// accepted k follows the true binomial law, with ~1.15 uniform pairs per
// variate.
func (p *PCG) binomialBTRS(n int64, prob float64) int64 {
	nf := float64(n)
	q := 1 - prob
	spq := math.Sqrt(nf * prob * q)
	b := 1.15 + 2.53*spq
	a := -0.0873 + 0.0248*b + 0.01*prob
	c := nf*prob + 0.5
	vr := 0.92 - 4.2/b
	alpha := (2.83 + 5.1/b) * spq
	lpq := math.Log(prob / q)
	m := math.Floor((nf + 1) * prob) // mode
	lgM, _ := math.Lgamma(m + 1)
	lgNM, _ := math.Lgamma(nf - m + 1)
	h := lgM + lgNM
	for {
		u := p.Float64() - 0.5
		v := p.Float64()
		us := 0.5 - math.Abs(u)
		k := math.Floor((2*a/us+b)*u + c)
		if k < 0 || k > nf {
			continue
		}
		if us >= 0.07 && v <= vr {
			return int64(k)
		}
		lgK, _ := math.Lgamma(k + 1)
		lgNK, _ := math.Lgamma(nf - k + 1)
		if math.Log(v*alpha/(a/(us*us)+b)) <= h-lgK-lgNK+(k-m)*lpq {
			return int64(k)
		}
	}
}

// binomialSkip counts successes by sampling the geometric gaps between them
// (Devroye's "second waiting time" method): exact, with expected cost
// O(np + 1).
func (p *PCG) binomialSkip(n int64, prob float64) int64 {
	logq := math.Log1p(-prob) // log(1-prob), stable for small prob
	var k, i int64
	for {
		// Failures before the next success ~ Geometric(prob).
		g := math.Log(p.Float64Open()) / logq
		if g >= float64(n-i) { // next success would land beyond trial n
			return k
		}
		i += int64(g) + 1
		k++
	}
}

// Shuffle randomises the order of the first n elements using swap, with the
// Fisher–Yates algorithm. It panics if n < 0.
func (p *PCG) Shuffle(n int, swap func(i, j int)) {
	if n < 0 {
		panic("rng: Shuffle with n < 0")
	}
	for i := n - 1; i > 0; i-- {
		j := p.Intn(i + 1)
		swap(i, j)
	}
}

// Perm returns a uniformly random permutation of [0, n).
func (p *PCG) Perm(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	p.Shuffle(n, func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}
