package rng

import "math"

// Exp returns an exponentially distributed variate with the given rate
// (mean 1/rate). It panics if rate <= 0. This is the inter-event time
// distribution of the stochastic simulation algorithm; it is sampled by the
// ziggurat method (see ziggurat.go), which avoids a logarithm on ~99% of
// draws.
func (p *PCG) Exp(rate float64) float64 {
	if rate <= 0 {
		panic("rng: Exp with rate <= 0")
	}
	return p.expZig() / rate
}

// Normal returns a normally distributed variate with the given mean and
// standard deviation, using the Marsaglia polar method.
func (p *PCG) Normal(mean, stddev float64) float64 {
	for {
		u := 2*p.Float64() - 1
		v := 2*p.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return mean + stddev*u*math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// Discrete samples an index i with probability weights[i] / sum(weights).
// Negative weights are treated as zero. It panics if the total weight is not
// positive. For repeated sampling from the same weights prefer NewAlias.
func (p *PCG) Discrete(weights []float64) int {
	total := 0.0
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 || math.IsNaN(total) || math.IsInf(total, 0) {
		panic("rng: Discrete with non-positive or non-finite total weight")
	}
	target := p.Float64() * total
	acc := 0.0
	last := -1
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		acc += w
		last = i
		if target < acc {
			return i
		}
	}
	// Floating-point slack: fall back to the final positive-weight index.
	return last
}

// Poisson returns a Poisson-distributed variate with the given mean.
// It panics if mean < 0. Small means use Knuth's product method; large means
// use the normal approximation with continuity correction (adequate for the
// tau-leaping use case where mean >> 1 and exactness is already sacrificed).
func (p *PCG) Poisson(mean float64) int64 {
	switch {
	case mean < 0 || math.IsNaN(mean):
		panic("rng: Poisson with negative or NaN mean")
	case mean == 0:
		return 0
	case mean < 30:
		limit := math.Exp(-mean)
		prod := p.Float64()
		var n int64
		for prod > limit {
			n++
			prod *= p.Float64()
		}
		return n
	default:
		n := int64(math.Floor(p.Normal(mean, math.Sqrt(mean)) + 0.5))
		if n < 0 {
			n = 0
		}
		return n
	}
}

// Binomial returns the number of successes in n independent trials each
// succeeding with probability prob. It panics if n < 0 or prob is outside
// [0, 1]. Uses inversion for small n and a normal approximation for large n
// with moderate p.
func (p *PCG) Binomial(n int64, prob float64) int64 {
	if n < 0 || prob < 0 || prob > 1 || math.IsNaN(prob) {
		panic("rng: Binomial with invalid parameters")
	}
	if n == 0 || prob == 0 {
		return 0
	}
	if prob == 1 {
		return n
	}
	mean := float64(n) * prob
	if n <= 64 || mean < 16 || float64(n)*(1-prob) < 16 {
		var k int64
		for i := int64(0); i < n; i++ {
			if p.Float64() < prob {
				k++
			}
		}
		return k
	}
	sd := math.Sqrt(mean * (1 - prob))
	k := int64(math.Floor(p.Normal(mean, sd) + 0.5))
	if k < 0 {
		k = 0
	}
	if k > n {
		k = n
	}
	return k
}

// Shuffle randomises the order of the first n elements using swap, with the
// Fisher–Yates algorithm. It panics if n < 0.
func (p *PCG) Shuffle(n int, swap func(i, j int)) {
	if n < 0 {
		panic("rng: Shuffle with n < 0")
	}
	for i := n - 1; i > 0; i-- {
		j := p.Intn(i + 1)
		swap(i, j)
	}
}

// Perm returns a uniformly random permutation of [0, n).
func (p *PCG) Perm(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	p.Shuffle(n, func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}
