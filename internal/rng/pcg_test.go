package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewDeterministic(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("seeds 1 and 2 collided %d/100 times", same)
	}
}

func TestStreamsIndependent(t *testing.T) {
	a := NewStream(7, 0)
	b := NewStream(7, 1)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("streams 0 and 1 of seed 7 collided %d/1000 times", same)
	}
}

func TestFloat64Range(t *testing.T) {
	p := New(3)
	for i := 0; i < 100000; i++ {
		f := p.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64OpenRange(t *testing.T) {
	p := New(4)
	for i := 0; i < 100000; i++ {
		f := p.Float64Open()
		if f <= 0 || f >= 1 {
			t.Fatalf("Float64Open out of (0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	p := New(5)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += p.Float64()
	}
	mean := sum / n
	// stderr of uniform mean is 1/sqrt(12n) ~ 0.00065; allow 6 sigma.
	if math.Abs(mean-0.5) > 0.004 {
		t.Fatalf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestUint64nBounds(t *testing.T) {
	p := New(6)
	for _, n := range []uint64{1, 2, 3, 7, 100, 1 << 40} {
		for i := 0; i < 1000; i++ {
			v := p.Uint64n(n)
			if v >= n {
				t.Fatalf("Uint64n(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestUint64nUniform(t *testing.T) {
	p := New(7)
	const n, trials = 10, 100000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[p.Uint64n(n)]++
	}
	want := float64(trials) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 6*math.Sqrt(want) {
			t.Errorf("bucket %d: %d draws, want ~%v", i, c, want)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestUint64nZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Uint64n(0) did not panic")
		}
	}()
	New(1).Uint64n(0)
}

func TestAdvanceMatchesSequential(t *testing.T) {
	for _, delta := range []uint64{0, 1, 2, 3, 10, 63, 64, 1000, 123457} {
		a := New(99)
		b := New(99)
		for i := uint64(0); i < delta; i++ {
			a.Uint64()
		}
		b.Advance(delta)
		for i := 0; i < 16; i++ {
			got, want := b.Uint64(), a.Uint64()
			if got != want {
				t.Fatalf("Advance(%d): output %d mismatch: got %x want %x", delta, i, got, want)
			}
		}
	}
}

func TestAdvanceProperty(t *testing.T) {
	f := func(seed uint64, delta16 uint16) bool {
		delta := uint64(delta16)
		a := New(seed)
		b := New(seed)
		for i := uint64(0); i < delta; i++ {
			a.Uint64()
		}
		b.Advance(delta)
		return a.Uint64() == b.Uint64()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestUint64BitBalance(t *testing.T) {
	p := New(11)
	const n = 100000
	var ones [64]int
	for i := 0; i < n; i++ {
		v := p.Uint64()
		for b := 0; b < 64; b++ {
			if v&(1<<b) != 0 {
				ones[b]++
			}
		}
	}
	for b, c := range ones {
		if math.Abs(float64(c)-n/2) > 6*math.Sqrt(n)/2 {
			t.Errorf("bit %d set %d/%d times", b, c, n)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	p := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += p.Uint64()
	}
	_ = sink
}

func BenchmarkFloat64(b *testing.B) {
	p := New(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += p.Float64()
	}
	_ = sink
}
