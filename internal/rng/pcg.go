// Package rng provides reproducible pseudo-random number generation for
// stochastic simulation.
//
// The package is built around a PCG-XSL-RR 128/64 generator (O'Neill 2014):
// a 128-bit linear congruential core with an output permutation. It offers
//
//   - full determinism across platforms (no dependence on math/rand's
//     unspecified seeding or scheduling),
//   - cheap independent streams for parallel Monte Carlo (each stream selects
//     a distinct LCG increment, giving statistically independent sequences
//     from the same seed),
//   - the samplers stochastic simulation needs: uniform, exponential,
//     discrete (both linear and alias-method), binomial, Poisson and normal.
//
// All generators in this package are deliberately *not* safe for concurrent
// use; parallel code derives one Stream per goroutine (see NewStream).
package rng

import "math/bits"

// PCG is a PCG-XSL-RR 128/64 pseudo-random generator.
//
// The zero value is not a valid generator; construct one with New or
// NewStream. PCG values are cheap to copy, but copies share no state and
// evolve independently after the copy.
type PCG struct {
	hi, lo uint64 // 128-bit LCG state
	incHi  uint64 // 128-bit increment (must be odd in low word)
	incLo  uint64
}

// Multiplier for the 128-bit LCG step (PCG reference implementation).
const (
	mulHi = 2549297995355413924
	mulLo = 4865540595714422341
)

// New returns a generator seeded from seed, using the default stream.
func New(seed uint64) *PCG {
	return NewStream(seed, 0)
}

// NewStream returns a generator seeded from seed on the given stream.
// Different stream values yield statistically independent sequences for the
// same seed, which is how parallel Monte Carlo trials obtain per-worker
// generators without correlation.
func NewStream(seed, stream uint64) *PCG {
	p := &PCG{}
	p.Reseed(seed, stream)
	return p
}

// Reseed reinitialises p in place to the exact starting state of
// NewStream(seed, stream). Worker loops that run many trials reposition one
// generator per trial this way instead of allocating a fresh PCG each time;
// the trial→stream mapping (and therefore every result) is identical.
func (p *PCG) Reseed(seed, stream uint64) {
	// Expand seed and stream through SplitMix64 so that closely related
	// inputs (0, 1, 2, ...) land far apart in state space.
	sm := seed
	s0 := splitmix64(&sm)
	s1 := splitmix64(&sm)
	sm = stream ^ 0x9e3779b97f4a7c15
	p.incHi = splitmix64(&sm)
	p.incLo = splitmix64(&sm) | 1 // increment must be odd

	// Standard PCG initialisation: advance once from zero state, add seed,
	// advance again.
	p.hi, p.lo = 0, 0
	p.step()
	p.lo, p.hi = add128(p.lo, p.hi, s1, s0)
	p.step()
}

// splitmix64 advances *x and returns the next SplitMix64 output.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// add128 returns (aLo,aHi) + (bLo,bHi) as (lo, hi).
func add128(aLo, aHi, bLo, bHi uint64) (lo, hi uint64) {
	lo, carry := bits.Add64(aLo, bLo, 0)
	hi, _ = bits.Add64(aHi, bHi, carry)
	return lo, hi
}

// step advances the 128-bit LCG state by one iteration.
func (p *PCG) step() {
	// state = state*mul + inc (mod 2^128)
	hi, lo := bits.Mul64(p.lo, mulLo)
	hi += p.hi*mulLo + p.lo*mulHi
	lo, carry := bits.Add64(lo, p.incLo, 0)
	hi, _ = bits.Add64(hi, p.incHi, carry)
	p.lo, p.hi = lo, hi
}

// Uint64 returns the next 64 uniformly distributed bits.
func (p *PCG) Uint64() uint64 {
	p.step()
	// XSL-RR output function: xor-fold the 128-bit state, then rotate by the
	// top six bits.
	return bits.RotateLeft64(p.hi^p.lo, -int(p.hi>>58))
}

// Uint64n returns a uniform integer in [0, n). It panics if n == 0.
// Uses Lemire's multiply-shift rejection method (unbiased).
func (p *PCG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n with n == 0")
	}
	hi, lo := bits.Mul64(p.Uint64(), n)
	if lo < n {
		thresh := -n % n
		for lo < thresh {
			hi, lo = bits.Mul64(p.Uint64(), n)
		}
	}
	return hi
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (p *PCG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with n <= 0")
	}
	return int(p.Uint64n(uint64(n)))
}

// Float64 returns a uniform float64 in [0, 1) with 53 random bits.
func (p *PCG) Float64() float64 {
	return float64(p.Uint64()>>11) * (1.0 / (1 << 53))
}

// Float64Open returns a uniform float64 in the open interval (0, 1). It never
// returns exactly 0, which makes it safe as the argument of a logarithm.
func (p *PCG) Float64Open() float64 {
	for {
		f := float64(p.Uint64()>>11+1) * (1.0 / ((1 << 53) + 1))
		if f > 0 && f < 1 {
			return f
		}
	}
}

// Advance moves the generator delta steps forward in its sequence in
// O(log delta) time, as if Uint64 had been called delta times and the
// results discarded.
func (p *PCG) Advance(delta uint64) {
	// LCG jump-ahead (Brown, "Random number generation with arbitrary
	// strides"): compute mul^delta and the matching increment in O(log n).
	accMulHi, accMulLo := uint64(0), uint64(1) // 1
	accIncHi, accIncLo := uint64(0), uint64(0) // 0
	curMulHi, curMulLo := uint64(mulHi), uint64(mulLo)
	curIncHi, curIncLo := p.incHi, p.incLo
	for delta > 0 {
		if delta&1 != 0 {
			accMulHi, accMulLo = mul128(accMulHi, accMulLo, curMulHi, curMulLo)
			// accInc = accInc*curMul + curInc
			h, l := mul128(accIncHi, accIncLo, curMulHi, curMulLo)
			accIncLo, accIncHi = add128(l, h, curIncLo, curIncHi)
		}
		// curInc = (curMul + 1) * curInc
		plus1Hi, plus1Lo := curMulHi, curMulLo
		plus1Lo, c := bits.Add64(plus1Lo, 1, 0)
		plus1Hi += c
		curIncHi, curIncLo = mul128(plus1Hi, plus1Lo, curIncHi, curIncLo)
		curMulHi, curMulLo = mul128(curMulHi, curMulLo, curMulHi, curMulLo)
		delta >>= 1
	}
	h, l := mul128(accMulHi, accMulLo, p.hi, p.lo)
	p.lo, p.hi = add128(l, h, accIncLo, accIncHi)
}

// mul128 returns the low 128 bits of (aHi,aLo) * (bHi,bLo).
func mul128(aHi, aLo, bHi, bLo uint64) (hi, lo uint64) {
	hi, lo = bits.Mul64(aLo, bLo)
	hi += aLo*bHi + aHi*bLo
	return hi, lo
}
