package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestAliasMatchesWeights(t *testing.T) {
	p := New(41)
	weights := []float64{1, 2, 3, 4}
	a := NewAlias(weights)
	const n = 200000
	counts := make([]int, len(weights))
	for i := 0; i < n; i++ {
		counts[a.Sample(p)]++
	}
	for i, w := range weights {
		want := w / 10 * n
		sd := math.Sqrt(want * (1 - w/10))
		if math.Abs(float64(counts[i])-want) > 6*sd {
			t.Errorf("outcome %d: %d draws, want ~%v", i, counts[i], want)
		}
	}
}

func TestAliasSingleCategory(t *testing.T) {
	p := New(42)
	a := NewAlias([]float64{7})
	for i := 0; i < 1000; i++ {
		if a.Sample(p) != 0 {
			t.Fatal("single-category alias returned nonzero index")
		}
	}
}

func TestAliasZeroWeightNeverSampled(t *testing.T) {
	p := New(43)
	a := NewAlias([]float64{0, 1, 0, 1, 0})
	for i := 0; i < 50000; i++ {
		got := a.Sample(p)
		if got != 1 && got != 3 {
			t.Fatalf("sampled zero-weight index %d", got)
		}
	}
}

func TestAliasNegativeTreatedAsZero(t *testing.T) {
	p := New(44)
	a := NewAlias([]float64{-5, 1})
	for i := 0; i < 10000; i++ {
		if a.Sample(p) != 1 {
			t.Fatal("sampled negative-weight index")
		}
	}
}

func TestAliasPanicsOnAllZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewAlias with all-zero weights did not panic")
		}
	}()
	NewAlias([]float64{0, 0, 0})
}

func TestAliasN(t *testing.T) {
	if got := NewAlias([]float64{1, 2, 3}).N(); got != 3 {
		t.Fatalf("N = %d, want 3", got)
	}
}

func TestAliasInRangeProperty(t *testing.T) {
	p := New(45)
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		weights := make([]float64, len(raw))
		total := 0.0
		for i, r := range raw {
			weights[i] = float64(r)
			total += weights[i]
		}
		if total == 0 {
			return true // all-zero would panic by contract
		}
		a := NewAlias(weights)
		for i := 0; i < 100; i++ {
			idx := a.Sample(p)
			if idx < 0 || idx >= len(weights) || weights[idx] == 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAliasSample(b *testing.B) {
	p := New(1)
	a := NewAlias([]float64{1, 5, 2, 9, 4, 7, 3, 8})
	var sink int
	for i := 0; i < b.N; i++ {
		sink += a.Sample(p)
	}
	_ = sink
}
