package rng

import (
	"math"
	"sort"
	"testing"
)

// TestExpDistributionKS checks the full shape of the ziggurat exponential
// against the analytic CDF 1−e^{−x} with a Kolmogorov–Smirnov test, so a
// table-construction bug anywhere along the curve (not just in the mean)
// would be caught.
func TestExpDistributionKS(t *testing.T) {
	const n = 200000
	p := New(31)
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = p.Exp(1)
	}
	sort.Float64s(xs)
	d := 0.0
	for i, x := range xs {
		cdf := 1 - math.Exp(-x)
		lo := cdf - float64(i)/n
		hi := float64(i+1)/n - cdf
		if lo > d {
			d = lo
		}
		if hi > d {
			d = hi
		}
	}
	// KS critical value at alpha=0.001: 1.95/sqrt(n).
	if crit := 1.95 / math.Sqrt(n); d > crit {
		t.Errorf("KS statistic %v exceeds %v: exponential shape is off", d, crit)
	}
}

// TestExpTail exercises the analytic-tail branch (x > r ≈ 7.7), which the
// fast path never reaches: tail mass must match e^{−r} and tail samples must
// themselves be exponential (memorylessness).
func TestExpTail(t *testing.T) {
	const n = 4000000
	p := New(32)
	var tail int
	var tailSum float64
	for i := 0; i < n; i++ {
		if v := p.Exp(1); v > zigExpR {
			tail++
			tailSum += v - zigExpR
		}
	}
	wantFrac := math.Exp(-zigExpR) // ≈ 4.54e-4
	frac := float64(tail) / n
	se := math.Sqrt(wantFrac * (1 - wantFrac) / n)
	if math.Abs(frac-wantFrac) > 6*se {
		t.Errorf("tail mass %v, want %v±%v", frac, wantFrac, 6*se)
	}
	if tail > 100 {
		mean := tailSum / float64(tail)
		if math.Abs(mean-1) > 6/math.Sqrt(float64(tail)) {
			t.Errorf("tail excess mean %v, want ~1 (memorylessness)", mean)
		}
	}
}

// TestExpVariance: Var[Exp(rate)] = 1/rate².
func TestExpVariance(t *testing.T) {
	const n = 200000
	p := New(33)
	sum, sumsq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := p.Exp(2)
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if want := 0.25; math.Abs(variance-want) > 0.01 {
		t.Errorf("variance %v, want %v", variance, want)
	}
}

// TestReseedMatchesNewStream: Reseed must reproduce NewStream bit for bit —
// the property worker pools rely on to reuse one generator across trials.
func TestReseedMatchesNewStream(t *testing.T) {
	reused := New(0)
	for _, c := range []struct{ seed, stream uint64 }{
		{0, 0}, {1, 0}, {0, 1}, {12345, 678}, {math.MaxUint64, math.MaxUint64},
	} {
		fresh := NewStream(c.seed, c.stream)
		reused.Reseed(c.seed, c.stream)
		for i := 0; i < 64; i++ {
			if a, b := fresh.Uint64(), reused.Uint64(); a != b {
				t.Fatalf("seed=%d stream=%d draw %d: fresh %x, reseeded %x",
					c.seed, c.stream, i, a, b)
			}
		}
	}
}
