package ode

import (
	"math"
	"testing"

	"stochsynth/internal/chem"
	"stochsynth/internal/mc"
	"stochsynth/internal/rng"
	"stochsynth/internal/sim"
)

func TestRK4ExponentialDecay(t *testing.T) {
	// a -> 0 at rate k: x(t) = x0·exp(−kt), analytic.
	net := chem.MustParseNetwork(`
a = 1000
a -> 0 @ 0.7
`)
	sys := NewSystem(net)
	x := RK4(sys, sys.InitialState(), 0, 2, 1e-3, nil)
	want := 1000 * math.Exp(-0.7*2)
	if math.Abs(x[0]-want)/want > 1e-6 {
		t.Fatalf("RK4 decay: %v, want %v", x[0], want)
	}
}

func TestRKF45ExponentialDecay(t *testing.T) {
	net := chem.MustParseNetwork(`
a = 1000
a -> 0 @ 0.7
`)
	sys := NewSystem(net)
	x, steps := RKF45(sys, sys.InitialState(), 0, 2, RKF45Options{})
	want := 1000 * math.Exp(-0.7*2)
	if math.Abs(x[0]-want)/want > 1e-5 {
		t.Fatalf("RKF45 decay: %v, want %v", x[0], want)
	}
	if steps <= 0 {
		t.Fatal("no accepted steps")
	}
}

func TestRK4Equilibrium(t *testing.T) {
	// a <-> b (rates 2, 1) from A=30: equilibrium A* = 10.
	net := chem.MustParseNetwork(`
a = 30
a -> b @ 2
b -> a @ 1
`)
	sys := NewSystem(net)
	x := RK4(sys, sys.InitialState(), 0, 20, 1e-3, nil)
	if math.Abs(x[0]-10) > 1e-6 {
		t.Fatalf("equilibrium A = %v, want 10", x[0])
	}
	if math.Abs(x[0]+x[1]-30) > 1e-9 {
		t.Fatalf("mass not conserved: %v", x)
	}
}

func TestRK4LinearModuleComputesRatio(t *testing.T) {
	// Paper's linear module αx → βy with α=2, β=3: stochastically
	// Y∞ = (β/α)·X0 = 150 exactly. The clamped mean field stalls at the
	// stoichiometric threshold x = α = 2 (below it C(x,2) clamps to zero),
	// so its limit is (β/α)·(X0 − α) = 147 — assert that precisely; the
	// exact stochastic value is covered by the synth package tests.
	net := chem.MustParseNetwork(`
x = 100
2 x -> 3 y @ 1
`)
	sys := NewSystem(net)
	x := RK4(sys, sys.InitialState(), 0, 50, 1e-3, nil)
	yIdx := net.MustSpecies("y")
	if math.Abs(x[yIdx]-147) > 0.1 {
		t.Fatalf("Y∞ = %v, want ≈147 (threshold-clamped mean field)", x[yIdx])
	}
	if xLeft := x[net.MustSpecies("x")]; math.Abs(xLeft-2) > 0.1 {
		t.Fatalf("X∞ = %v, want stall at threshold 2", xLeft)
	}
}

func TestMeanFieldMatchesSSAMean(t *testing.T) {
	// Birth-death: 0 -> b @ 50, b -> 0 @ 1. Mean field and SSA mean both
	// converge to 50.
	net := chem.MustParseNetwork(`
0 -> b @ 50
b -> 0 @ 1
`)
	sys := NewSystem(net)
	x := RK4(sys, sys.InitialState(), 0, 10, 1e-3, nil)
	if math.Abs(x[0]-50) > 0.01 {
		t.Fatalf("mean-field b = %v, want 50", x[0])
	}
	sum := mc.RunNumeric(mc.Config{Trials: 2000, Seed: 3}, func(gen *rng.PCG) float64 {
		eng := sim.NewDirect(net, gen)
		sim.Run(eng, sim.RunOptions{MaxTime: 10})
		return float64(eng.State()[0])
	})
	if math.Abs(sum.Mean-x[0]) > 6*sum.StdErr()+0.05 {
		t.Fatalf("SSA mean %v vs mean-field %v", sum.Mean, x[0])
	}
}

func TestRK4ObserverMonotoneTime(t *testing.T) {
	net := chem.MustParseNetwork(`
a = 10
a -> 0 @ 1
`)
	sys := NewSystem(net)
	last := -1.0
	RK4(sys, sys.InitialState(), 0, 1, 0.01, func(tm float64, x []float64) {
		if tm <= last {
			t.Fatalf("observer time went backwards: %v after %v", tm, last)
		}
		last = tm
	})
	if math.Abs(last-1) > 1e-12 {
		t.Fatalf("final observed time = %v, want 1", last)
	}
}

func TestRK4PanicsOnBadStep(t *testing.T) {
	net := chem.MustParseNetwork(`a -> 0 @ 1`)
	sys := NewSystem(net)
	defer func() {
		if recover() == nil {
			t.Fatal("RK4 with dt=0 did not panic")
		}
	}()
	RK4(sys, sys.InitialState(), 0, 1, 0, nil)
}

func TestGeneralizedBinomialThreshold(t *testing.T) {
	// Below the stoichiometric threshold the mean-field rate must vanish,
	// matching the stochastic propensity.
	if got := generalizedBinomial(1.5, 2); got != 0 {
		t.Fatalf("C(1.5,2) = %v, want 0", got)
	}
	if got := generalizedBinomial(4, 2); math.Abs(got-6) > 1e-12 {
		t.Fatalf("C(4,2) = %v, want 6", got)
	}
}

func TestRKF45AgreesWithRK4(t *testing.T) {
	net := chem.MustParseNetwork(`
a = 500
b = 10
a + b -> 2 b @ 0.002
b -> 0 @ 0.8
`)
	sys := NewSystem(net)
	x1 := RK4(sys, sys.InitialState(), 0, 5, 1e-4, nil)
	x2, _ := RKF45(sys, sys.InitialState(), 0, 5, RKF45Options{AbsTol: 1e-9, RelTol: 1e-9})
	for i := range x1 {
		if math.Abs(x1[i]-x2[i]) > 1e-3*(1+math.Abs(x1[i])) {
			t.Fatalf("species %d: RK4 %v vs RKF45 %v", i, x1[i], x2[i])
		}
	}
}
