// Package ode provides deterministic mean-field integration of chemical
// reaction networks.
//
// The mean-field rate of reaction j in (real-valued) state x uses the same
// combinatorial kinetics as the stochastic propensity, a_j(x) =
// k_j·Π C(x_i, ν_i) with C generalised to real arguments, so that for large
// counts the ODE trajectory matches the mean of the exact stochastic process
// to first order. The package is a verification substrate: tests compare SSA
// ensemble means against the integrated mean field, and module designers can
// sanity-check functional behaviour before paying for Monte Carlo.
//
// Two integrators are provided: fixed-step classical RK4 and adaptive
// RKF45 (Runge–Kutta–Fehlberg with embedded error control).
package ode

import (
	"math"

	"stochsynth/internal/chem"
)

// System is a mean-field ODE system extracted from a reaction network.
type System struct {
	net    *chem.Network
	deltas [][]int64
}

// NewSystem builds the mean-field system of net.
func NewSystem(net *chem.Network) *System {
	s := &System{net: net}
	s.deltas = make([][]int64, net.NumReactions())
	for i := 0; i < net.NumReactions(); i++ {
		s.deltas[i] = chem.Delta(net.Reaction(i), net.NumSpecies())
	}
	return s
}

// Dim returns the state dimension (number of species).
func (s *System) Dim() int { return s.net.NumSpecies() }

// InitialState returns the network's default initial counts as floats.
func (s *System) InitialState() []float64 {
	st := s.net.InitialState()
	x := make([]float64, len(st))
	for i, c := range st {
		x[i] = float64(c)
	}
	return x
}

// Derivs writes dx/dt into dst for the given state x. Negative intermediate
// values (possible transiently in stiff systems under a fixed step) are
// treated as zero concentration for rate evaluation, which keeps the flow
// field pointing back into the positive orthant.
func (s *System) Derivs(dst, x []float64) {
	for i := range dst {
		dst[i] = 0
	}
	for j := 0; j < s.net.NumReactions(); j++ {
		r := s.net.Reaction(j)
		rate := r.Rate
		for _, term := range r.Reactants {
			xi := x[term.Species]
			if xi < 0 {
				xi = 0
			}
			rate *= generalizedBinomial(xi, term.Coeff)
		}
		if rate == 0 {
			continue
		}
		for sp, d := range s.deltas[j] {
			if d != 0 {
				dst[sp] += rate * float64(d)
			}
		}
	}
}

// generalizedBinomial evaluates C(x, k) = x(x−1)…(x−k+1)/k! with real x,
// clamped to zero when x < k (matching the stochastic propensity, which
// vanishes below the stoichiometric threshold).
func generalizedBinomial(x float64, k int64) float64 {
	if x < float64(k) {
		return 0
	}
	v := 1.0
	for i := int64(0); i < k; i++ {
		v *= (x - float64(i)) / float64(i+1)
	}
	return v
}

// RK4 integrates the system from x0 at t0 to t1 with fixed step dt using
// the classical fourth-order Runge–Kutta method, returning the final state.
// If observe is non-nil it is called after every step with (t, x); the x
// slice is live and must not be retained.
func RK4(s *System, x0 []float64, t0, t1, dt float64, observe func(t float64, x []float64)) []float64 {
	if dt <= 0 {
		panic("ode: RK4 with non-positive dt")
	}
	n := len(x0)
	x := append([]float64(nil), x0...)
	k1 := make([]float64, n)
	k2 := make([]float64, n)
	k3 := make([]float64, n)
	k4 := make([]float64, n)
	tmp := make([]float64, n)
	t := t0
	for t < t1 {
		h := dt
		if t+h > t1 {
			h = t1 - t
		}
		s.Derivs(k1, x)
		for i := range tmp {
			tmp[i] = x[i] + h/2*k1[i]
		}
		s.Derivs(k2, tmp)
		for i := range tmp {
			tmp[i] = x[i] + h/2*k2[i]
		}
		s.Derivs(k3, tmp)
		for i := range tmp {
			tmp[i] = x[i] + h*k3[i]
		}
		s.Derivs(k4, tmp)
		for i := range x {
			x[i] += h / 6 * (k1[i] + 2*k2[i] + 2*k3[i] + k4[i])
			if x[i] < 0 {
				x[i] = 0
			}
		}
		t += h
		if observe != nil {
			observe(t, x)
		}
	}
	return x
}

// RKF45Options tunes the adaptive integrator.
type RKF45Options struct {
	// AbsTol is the per-component absolute error tolerance (default 1e-6).
	AbsTol float64
	// RelTol is the per-component relative error tolerance (default 1e-6).
	RelTol float64
	// InitialStep seeds the step-size controller (default (t1−t0)/100).
	InitialStep float64
	// MaxSteps bounds the total accepted+rejected step count (default 10M).
	MaxSteps int
}

// RKF45 integrates the system from x0 at t0 to t1 with the adaptive
// Runge–Kutta–Fehlberg 4(5) method. It returns the final state and the
// number of accepted steps. It panics if the step controller fails to make
// progress (step underflow), which signals an unreasonably stiff system —
// use more rate-band separation or the stochastic engines instead.
func RKF45(s *System, x0 []float64, t0, t1 float64, opts RKF45Options) ([]float64, int) {
	if opts.AbsTol <= 0 {
		opts.AbsTol = 1e-6
	}
	if opts.RelTol <= 0 {
		opts.RelTol = 1e-6
	}
	if opts.MaxSteps <= 0 {
		opts.MaxSteps = 10_000_000
	}
	h := opts.InitialStep
	if h <= 0 {
		h = (t1 - t0) / 100
	}
	n := len(x0)
	x := append([]float64(nil), x0...)
	var k [6][]float64
	for i := range k {
		k[i] = make([]float64, n)
	}
	tmp := make([]float64, n)
	x5 := make([]float64, n)

	t := t0
	accepted := 0
	for step := 0; t < t1; step++ {
		if step >= opts.MaxSteps {
			panic("ode: RKF45 exceeded MaxSteps")
		}
		if t+h > t1 {
			h = t1 - t
		}
		stage := func(dst []float64, coeffs [5]float64) {
			for i := 0; i < n; i++ {
				v := x[i]
				for j, c := range coeffs {
					if c != 0 {
						v += h * c * k[j][i]
					}
				}
				tmp[i] = v
			}
			s.Derivs(dst, tmp)
		}
		s.Derivs(k[0], x)
		stage(k[1], [5]float64{1.0 / 4})
		stage(k[2], [5]float64{3.0 / 32, 9.0 / 32})
		stage(k[3], [5]float64{1932.0 / 2197, -7200.0 / 2197, 7296.0 / 2197})
		stage(k[4], [5]float64{439.0 / 216, -8, 3680.0 / 513, -845.0 / 4104})
		stage(k[5], [5]float64{-8.0 / 27, 2, -3544.0 / 2565, 1859.0 / 4104, -11.0 / 40})

		// 4th-order solution and embedded 5th-order solution.
		errNorm := 0.0
		for i := 0; i < n; i++ {
			y4 := x[i] + h*(25.0/216*k[0][i]+1408.0/2565*k[2][i]+2197.0/4104*k[3][i]-1.0/5*k[4][i])
			y5 := x[i] + h*(16.0/135*k[0][i]+6656.0/12825*k[2][i]+28561.0/56430*k[3][i]-9.0/50*k[4][i]+2.0/55*k[5][i])
			sc := opts.AbsTol + opts.RelTol*math.Max(math.Abs(x[i]), math.Abs(y5))
			e := math.Abs(y5-y4) / sc
			if e > errNorm {
				errNorm = e
			}
			x5[i] = y5
		}
		if errNorm <= 1 {
			t += h
			for i := range x {
				x[i] = x5[i]
				if x[i] < 0 {
					x[i] = 0
				}
			}
			accepted++
		}
		// Standard step-size update with safety factor and clamps.
		factor := 0.9 * math.Pow(1/math.Max(errNorm, 1e-10), 0.2)
		if factor < 0.1 {
			factor = 0.1
		}
		if factor > 5 {
			factor = 5
		}
		h *= factor
		if h <= 0 || (t+h == t && t < t1) {
			panic("ode: RKF45 step size underflow (system too stiff)")
		}
	}
	return x, accepted
}
