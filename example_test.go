package stochsynth_test

import (
	"fmt"

	"stochsynth"
)

// ExampleStochasticSpec shows the paper's Example 1: a three-outcome
// distribution programmed by initial quantities.
func ExampleStochasticSpec() {
	mod, err := stochsynth.StochasticSpec{
		Outcomes: []stochsynth.Outcome{{Weight: 30}, {Weight: 40}, {Weight: 30}},
		Gamma:    1e3,
	}.Build()
	if err != nil {
		panic(err)
	}
	fmt.Printf("reactions: %d\n", mod.Net.NumReactions())
	fmt.Printf("programmed: %.2f\n", mod.Probabilities())
	// Output:
	// reactions: 18
	// programmed: [0.30 0.40 0.30]
}

// ExampleParseNetworkString parses the .crn text format.
func ExampleParseNetworkString() {
	net, err := stochsynth.ParseNetworkString(`
e1 = 30
initializing: e1 -> d1 @ 1
purifying: d1 + d2 -> 0 @ 1e6
`)
	if err != nil {
		panic(err)
	}
	fmt.Print(stochsynth.Format(net))
	// Output:
	// (initializing) e1 --1--> d1
	// (purifying)    d1 + d2 --1e+06--> ∅
	//
	// initial quantities:
	//   e1 = 30
}

// ExampleLinearSpec builds the paper's linear module αx → βy.
func ExampleLinearSpec() {
	net, err := stochsynth.LinearSpec{Alpha: 2, Beta: 3, X: "x", Y: "y"}.Build()
	if err != nil {
		panic(err)
	}
	fmt.Print(stochsynth.Format(net))
	// Output:
	// (linear) 2x --1--> 3y
}

// ExampleAffineSpec compiles the paper's Example 2 preprocessing.
func ExampleAffineSpec() {
	am, err := stochsynth.AffineSpec{
		Stochastic: stochsynth.StochasticSpec{
			Outcomes: []stochsynth.Outcome{{Weight: 30}, {Weight: 40}, {Weight: 30}},
			Gamma:    1e3,
		},
		Inputs: []string{"x1", "x2"},
		Coeff:  [][]float64{{0.02, -0.03}, {0, 0.03}, {-0.02, 0}},
	}.Build()
	if err != nil {
		panic(err)
	}
	p, err := am.ProbabilitiesAt([]int64{5, 4})
	if err != nil {
		panic(err)
	}
	fmt.Printf("p at X=(5,4): %.2f\n", p)
	// Output:
	// p at X=(5,4): [0.28 0.52 0.20]
}

// ExampleSynthesisParams programs a custom lambda-style response.
func ExampleSynthesisParams() {
	m, err := stochsynth.LambdaSynthesize(stochsynth.SynthesisParams{A: 20, B: 4, CInv: 8})
	if err != nil {
		panic(err)
	}
	fmt.Printf("%s model: %d reactions, %d species\n",
		m.Name, m.Net.NumReactions(), m.Net.NumSpecies())
	// Output:
	// synthetic model: 19 reactions, 17 species
}

// ExampleEvalPolynomial evaluates the value a PolynomialSpec converges to.
func ExampleEvalPolynomial() {
	fmt.Println(stochsynth.EvalPolynomial([]int64{1, 2, 1}, 3)) // 1 + 2·3 + 3²
	fmt.Println(stochsynth.EvalPolynomial([]int64{2, -1}, 5))   // clamped at 0
	// Output:
	// 16
	// 0
}

// ExampleLogLin evaluates the paper's Equation 14.
func ExampleLogLin() {
	ref := stochsynth.LambdaReference()
	fmt.Printf("P(lysogeny) at MOI=8: %.2f%%\n", ref.Eval(8))
	// Output:
	// P(lysogeny) at MOI=8: 34.33%
}
