// Package stochsynth synthesizes stochastic behaviour in biochemical
// systems: it compiles a specified probability distribution over discrete
// outcomes — optionally a programmable function of input molecular
// quantities — into an abstract chemical reaction network, and provides the
// exact stochastic simulation and Monte Carlo machinery to verify the
// result.
//
// It is a from-scratch reproduction of Fett, Bruck & Riedel,
// "Synthesizing Stochasticity in Biochemical Systems", DAC 2007.
//
// # Quick start
//
// Program a 30/40/30 three-outcome distribution (the paper's Example 1),
// simulate it, and verify the outcome frequencies:
//
//	mod, err := stochsynth.StochasticSpec{
//		Outcomes: []stochsynth.Outcome{{Weight: 30}, {Weight: 40}, {Weight: 30}},
//		Gamma:    1e3,
//	}.Build()
//	if err != nil { ... }
//	res := stochsynth.MonteCarlo(stochsynth.MCConfig{Trials: 10000, Outcomes: 3, Seed: 1},
//		func(gen *stochsynth.RNG) int {
//			eng := stochsynth.NewDirect(mod.Net, gen)
//			stochsynth.Simulate(eng, stochsynth.RunOptions{
//				StopWhen: mod.ThresholdPredicate(10),
//			})
//			return mod.Winner(eng.State(), 10)
//		})
//	fmt.Println(res) // ≈ p0=0.30 p1=0.40 p2=0.30
//
// # Architecture
//
// The facade re-exports the stable API of the internal packages:
//
//   - network modelling (internal/chem): Network, Reaction, State,
//     ParseNetwork, Format
//   - synthesis (internal/synth): StochasticSpec, the deterministic
//     function modules, affine preprocessing
//   - exact simulation (internal/sim): Direct, NextReaction and friends
//   - Monte Carlo (internal/mc) and curve fitting (internal/fit)
//   - the lambda bacteriophage application (internal/lambda)
//
// Downstream code imports only this package; the internal packages are not
// importable outside the module, which keeps the public surface small and
// stable.
package stochsynth

import (
	"stochsynth/internal/chem"
	"stochsynth/internal/fit"
	"stochsynth/internal/lambda"
	"stochsynth/internal/mc"
	"stochsynth/internal/rng"
	"stochsynth/internal/sim"
	"stochsynth/internal/synth"
)

// Network modelling.
type (
	// Network is a chemical reaction network (species, reactions, initial
	// quantities).
	Network = chem.Network
	// Species identifies a molecular type within one Network.
	Species = chem.Species
	// Reaction is one reaction channel with mass-action kinetics.
	Reaction = chem.Reaction
	// Term pairs a species with a stoichiometric coefficient.
	Term = chem.Term
	// State is a vector of molecule counts indexed by Species.
	State = chem.State
	// Builder provides fluent network construction by species name.
	Builder = chem.Builder
)

// NewNetwork returns an empty network.
func NewNetwork() *Network { return chem.NewNetwork() }

// NewBuilder returns a Builder over a fresh network.
func NewBuilder() *Builder { return chem.NewBuilder() }

// ParseNetwork parses the .crn text format. See internal/chem.ParseNetwork
// for the grammar.
var ParseNetwork = chem.ParseNetwork

// ParseNetworkString parses a .crn document held in a string.
var ParseNetworkString = chem.ParseNetworkString

// Format renders a network in the paper's notation (Figure 4 style).
var Format = chem.Format

// FormatReaction renders one reaction in the paper's notation.
var FormatReaction = chem.FormatReaction

// MarshalCRN renders a network in the parseable .crn format.
func MarshalCRN(net *Network) []byte { return chem.AppendCRN(nil, net) }

// Propensity returns the stochastic propensity of r in state s.
var Propensity = chem.Propensity

// Validate performs structural checks on a network.
var Validate = chem.Validate

// Randomness.
type (
	// RNG is the deterministic PCG generator used throughout.
	RNG = rng.PCG
)

// NewRNG returns a generator seeded from seed.
func NewRNG(seed uint64) *RNG { return rng.New(seed) }

// NewRNGStream returns an independent stream for parallel work.
func NewRNGStream(seed, stream uint64) *RNG { return rng.NewStream(seed, stream) }

// Simulation.
type (
	// Engine is an exact stochastic simulation engine.
	Engine = sim.Engine
	// RunOptions bounds a simulation run and attaches observers.
	RunOptions = sim.RunOptions
	// RunResult summarises a simulation run.
	RunResult = sim.RunResult
	// Trajectory records (time, state) samples.
	Trajectory = sim.Trajectory
)

// NewDirect returns a Gillespie direct-method engine.
func NewDirect(net *Network, gen *RNG) Engine { return sim.NewDirect(net, gen) }

// NewNextReaction returns a Gibson–Bruck next-reaction engine.
func NewNextReaction(net *Network, gen *RNG) Engine { return sim.NewNextReaction(net, gen) }

// NewFirstReaction returns a first-reaction-method engine.
func NewFirstReaction(net *Network, gen *RNG) Engine { return sim.NewFirstReaction(net, gen) }

// NewOptimizedDirect returns a dependency-graph-optimised direct engine.
func NewOptimizedDirect(net *Network, gen *RNG) Engine { return sim.NewOptimizedDirect(net, gen) }

// Simulate drives an engine until a stop condition is met.
var Simulate = sim.Run

// Monte Carlo.
type (
	// MCConfig parameterises a Monte Carlo run.
	MCConfig = mc.Config
	// MCResult tallies outcome counts.
	MCResult = mc.Result
	// Proportion is a binomial proportion with Wilson intervals.
	Proportion = mc.Proportion
)

// MonteCarlo runs independent trials in parallel with reproducible
// per-trial randomness.
var MonteCarlo = mc.Run

// MonteCarloWith runs independent trials with per-worker engine reuse:
// newEngine is called once per worker, and classify runs every trial of
// that worker's stripe on the same engine (reseeded per trial), avoiding
// per-trial construction of propensity vectors and dependency graphs.
// Results are bit-for-bit identical to the per-trial-engine path.
func MonteCarloWith[E any](cfg MCConfig, newEngine func(*RNG) E, classify func(E) int) MCResult {
	return mc.RunWith(cfg, newEngine, classify)
}

// MonteCarloNone is the outcome value meaning "unclassifiable trial".
const MonteCarloNone = mc.None

// Synthesis.
type (
	// StochasticSpec specifies a stochastic module (§2.1 of the paper).
	StochasticSpec = synth.StochasticSpec
	// Outcome specifies one discrete outcome of a stochastic module.
	Outcome = synth.Outcome
	// Output specifies a working-reaction product.
	Output = synth.Output
	// StochasticModule is a built stochastic module.
	StochasticModule = synth.StochasticModule
	// AffineSpec programs p = c + A·X preprocessing (Example 2).
	AffineSpec = synth.AffineSpec
	// AffineModule is a built affine-programmed module.
	AffineModule = synth.AffineModule
	// LinearSpec is the αx → βy module.
	LinearSpec = synth.LinearSpec
	// Exp2Spec computes Y∞ = 2^X₀.
	Exp2Spec = synth.Exp2Spec
	// Log2Spec computes Y∞ = log₂X₀.
	Log2Spec = synth.Log2Spec
	// PowerSpec computes Y∞ = X₀^P₀.
	PowerSpec = synth.PowerSpec
	// IsolationSpec enforces Y∞ = 1.
	IsolationSpec = synth.IsolationSpec
	// PolynomialSpec computes Y∞ = max(0, Σ c_k·X^k) (§2.2.2).
	PolynomialSpec = synth.PolynomialSpec
	// RateBands maps relative speed levels to concrete rates.
	RateBands = synth.RateBands
)

// EvalPolynomial returns the value a PolynomialSpec network converges to.
var EvalPolynomial = synth.EvalPolynomial

// DefaultBands returns the paper's band scheme (slowest 1e-3, ×10³ apart).
var DefaultBands = synth.DefaultBands

// FanOut adds the in → out₁ + … + outₙ glue reaction.
var FanOut = synth.FanOut

// Assimilation adds the y + e_from → e_to glue reaction.
var Assimilation = synth.Assimilation

// Curve fitting.
type (
	// LogLin is the paper's a + b·log₂(x) + c·x response model (Eq. 14).
	LogLin = fit.LogLin
)

// FitLogLin fits the Equation 14 model family by least squares.
var FitLogLin = fit.FitLogLin

// Lambda bacteriophage application (§3).
type (
	// LambdaModel is a lysis/lysogeny model ready for characterisation.
	LambdaModel = lambda.Model
	// LambdaPoint is one MOI sweep sample.
	LambdaPoint = lambda.Point
	// SynthesisParams programs a synthetic lambda response.
	SynthesisParams = lambda.SynthesisParams
	// NaturalParams are the natural-surrogate rate constants.
	NaturalParams = lambda.NaturalParams
)

// LambdaReference returns Equation 14.
var LambdaReference = lambda.Reference

// LambdaSynthetic returns the paper's Figure 4 model.
var LambdaSynthetic = lambda.SyntheticModel

// LambdaSynthesize compiles custom response parameters into a model.
var LambdaSynthesize = lambda.Synthesize

// LambdaNatural builds the mechanistic natural-model surrogate.
var LambdaNatural = lambda.NaturalModel

// LambdaSweepMOI characterises a model across MOI values.
var LambdaSweepMOI = lambda.SweepMOI

// LambdaFitResponse fits Equation 14's family to sweep points.
var LambdaFitResponse = lambda.FitResponse
