// Command benchjson converts `go test -bench` output into a
// machine-readable JSON summary, so CI can accumulate per-PR performance
// trajectory files (BENCH_<n>.json) alongside the human benchstat text.
//
// Usage:
//
//	go test -bench . -count 5 | benchjson -pr 5 > BENCH_5.json
//
// Repetitions of the same benchmark (from -count) are aggregated into
// mean/min/max per metric. Both the built-in ns/op series and every custom
// metric (trials/s, speedup-vs-optimized, lysogeny%, ns/event, ...) are
// captured. Lines that are not benchmark results (headers, PASS/ok) carry
// the run's environment and are folded into the header fields.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Series summarises one metric's repetitions.
type Series struct {
	Mean float64 `json:"mean"`
	Min  float64 `json:"min"`
	Max  float64 `json:"max"`
}

// Bench is one benchmark's aggregated result.
type Bench struct {
	Samples int                `json:"samples"`
	NsPerOp *Series            `json:"ns_per_op,omitempty"`
	Metrics map[string]*Series `json:"metrics,omitempty"`
}

// Report is the BENCH_<n>.json document.
type Report struct {
	Schema     string            `json:"schema"`
	PR         int               `json:"pr,omitempty"`
	Env        map[string]string `json:"env,omitempty"`
	Benchmarks map[string]*Bench `json:"benchmarks"`
}

func main() {
	pr := flag.Int("pr", 0, "PR number recorded in the report (file naming convention BENCH_<pr>.json)")
	flag.Parse()
	report, err := Parse(os.Stdin, *pr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// accumulator folds repeated observations into a Series.
type accumulator struct {
	n   int
	sum float64
	min float64
	max float64
}

func (a *accumulator) add(v float64) {
	if a.n == 0 || v < a.min {
		a.min = v
	}
	if a.n == 0 || v > a.max {
		a.max = v
	}
	a.n++
	a.sum += v
}

func (a *accumulator) series() *Series {
	if a.n == 0 {
		return nil
	}
	return &Series{Mean: a.sum / float64(a.n), Min: a.min, Max: a.max}
}

// Parse reads `go test -bench` output and aggregates it into a Report.
func Parse(r io.Reader, pr int) (*Report, error) {
	type key struct{ bench, metric string }
	accs := map[key]*accumulator{}
	samples := map[string]int{}
	env := map[string]string{}

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if name, value, ok := strings.Cut(line, ": "); ok && !strings.HasPrefix(line, "Benchmark") {
			switch name {
			case "goos", "goarch", "pkg", "cpu":
				env[name] = value
			}
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 3 {
			continue
		}
		name := strings.TrimPrefix(fields[0], "Benchmark")
		// Strip the -GOMAXPROCS suffix go test appends when procs > 1.
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		if _, err := strconv.Atoi(fields[1]); err != nil {
			continue // not an iteration count: not a result line
		}
		samples[name]++
		// Remaining fields come in (value, unit) pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			unit := fields[i+1]
			k := key{name, unit}
			if accs[k] == nil {
				accs[k] = &accumulator{}
			}
			accs[k].add(v)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(samples) == 0 {
		return nil, fmt.Errorf("no benchmark result lines found in input")
	}

	report := &Report{
		Schema:     "stochsynth-bench/v1",
		PR:         pr,
		Env:        env,
		Benchmarks: map[string]*Bench{},
	}
	names := make([]string, 0, len(samples))
	for name := range samples {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		b := &Bench{Samples: samples[name], Metrics: map[string]*Series{}}
		for k, acc := range accs {
			if k.bench != name {
				continue
			}
			if k.metric == "ns/op" {
				b.NsPerOp = acc.series()
			} else {
				b.Metrics[k.metric] = acc.series()
			}
		}
		if len(b.Metrics) == 0 {
			b.Metrics = nil
		}
		report.Benchmarks[name] = b
	}
	return report, nil
}
