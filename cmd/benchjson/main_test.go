package main

import (
	"math"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: stochsynth
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkTrialsNaturalOptimizedReuse 	     132	   9008000 ns/op	        27.45 lysogeny%	     22202 trials/s
BenchmarkTrialsNaturalOptimizedReuse 	     128	   9152451 ns/op	        27.46 lysogeny%	     21852 trials/s
BenchmarkFigure5SyntheticHybrid/moi=1-8 	      10	 100000000 ns/op	        12.00 lysogeny%	      1000 trials/s	         25.00 speedup-vs-optimized
BenchmarkEngineDirectLambda 	    1970	    591201 ns/op	        59.12 ns/event
PASS
ok  	stochsynth	6.079s
`

func TestParseAggregatesRepetitions(t *testing.T) {
	report, err := Parse(strings.NewReader(sample), 5)
	if err != nil {
		t.Fatal(err)
	}
	if report.PR != 5 || report.Schema != "stochsynth-bench/v1" {
		t.Fatalf("bad header: %+v", report)
	}
	if report.Env["cpu"] == "" || report.Env["goos"] != "linux" {
		t.Fatalf("environment not captured: %v", report.Env)
	}

	reuse := report.Benchmarks["TrialsNaturalOptimizedReuse"]
	if reuse == nil || reuse.Samples != 2 {
		t.Fatalf("reuse bench not aggregated: %+v", reuse)
	}
	ts := reuse.Metrics["trials/s"]
	if ts == nil || ts.Min != 21852 || ts.Max != 22202 || math.Abs(ts.Mean-22027) > 0.5 {
		t.Fatalf("trials/s series wrong: %+v", ts)
	}
	if reuse.NsPerOp == nil || reuse.NsPerOp.Min != 9008000 {
		t.Fatalf("ns/op series wrong: %+v", reuse.NsPerOp)
	}

	// The -8 GOMAXPROCS suffix is stripped; sub-benchmark paths are kept.
	hybrid := report.Benchmarks["Figure5SyntheticHybrid/moi=1"]
	if hybrid == nil {
		t.Fatalf("sub-benchmark missing: %v", keys(report.Benchmarks))
	}
	if sp := hybrid.Metrics["speedup-vs-optimized"]; sp == nil || sp.Mean != 25 {
		t.Fatalf("speedup metric missing: %+v", hybrid.Metrics)
	}

	if ev := report.Benchmarks["EngineDirectLambda"].Metrics["ns/event"]; ev == nil || ev.Mean != 59.12 {
		t.Fatalf("ns/event metric missing")
	}
}

func TestParseRejectsEmptyInput(t *testing.T) {
	if _, err := Parse(strings.NewReader("PASS\nok x 1s\n"), 0); err == nil {
		t.Fatal("expected an error for input with no benchmark lines")
	}
}

func keys(m map[string]*Bench) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
