// Package mc is cmd/stochlint's known-bad fixture: it impersonates the
// statistics core's import path and violates every analyzer at least
// once, so the smoke test can prove the multichecker wires each analyzer
// into its output.
package mc

import (
	"math/rand"
	"time"
)

// Jitter trips detrand: the globally seeded math/rand generator in a
// pinned simulation package.
func Jitter() float64 {
	return rand.Float64()
}

// Stamp trips detrand's wall-clock check.
func Stamp() time.Time {
	return time.Now()
}

// Keys trips mapiter: map-iteration-ordered append escaping unsorted.
func Keys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

// Mean trips floataccum: an exported serial float fold in internal/mc.
func Mean(values []float64) float64 {
	total := 0.0
	for _, v := range values {
		total += v
	}
	return total / float64(len(values))
}

// Scratch trips noalloc: annotated allocation-free yet allocating.
//
//stochlint:noalloc
func Scratch(n int) []float64 {
	return make([]float64, n)
}

// MergeBad trips mergecontract: a Merge-rooted function in internal/mc
// with a serial float fold outside the canonical kernel and a map range
// feeding the result.
func MergeBad(parts []float64, named map[string]float64) float64 {
	acc := 0.0
	for _, p := range parts {
		acc += p
	}
	for _, v := range named {
		acc += v
	}
	return acc
}
