// Package shard is cmd/stochlint's known-bad transport fixture: it
// impersonates the sharding package's import path and violates locksafe,
// so the smoke test can prove the concurrency analyzer is wired into the
// multichecker output.
package shard

import "sync"

// Queue is a deliberately wrong lock/channel pairing.
type Queue struct {
	mu sync.Mutex
	ch chan int
}

// Push trips locksafe: a channel send while q.mu is held (the receiver
// may never drain, and every other Push then blocks on the mutex).
func (q *Queue) Push(v int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.ch <- v
}

// Spawn trips locksafe's loop-variable rule: goroutines capturing the
// range variable.
func Spawn(vals []int, out chan<- int) {
	var wg sync.WaitGroup
	for _, v := range vals {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out <- v
		}()
	}
	wg.Wait()
}
