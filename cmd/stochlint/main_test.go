package main

import (
	"encoding/json"
	"strings"
	"testing"

	"stochsynth/internal/analysis"
	"stochsynth/internal/analysis/load"
	"stochsynth/internal/analysis/stochlint"
)

// loadKnownBad loads the known-bad fixture packages (one impersonating
// the statistics core, one the sharding transport).
func loadKnownBad(t *testing.T) []*analysis.Unit {
	t.Helper()
	loader := load.NewSrcLoader("testdata/src")
	units, err := loader.Load("stochsynth/internal/mc", "stochsynth/internal/shard")
	if err != nil {
		t.Fatalf("load fixture: %v", err)
	}
	return units
}

// TestSmokeKnownBad drives the full suite over fixture packages that
// violate every invariant and checks each analyzer contributes at least
// one diagnostic to the multichecker output.
func TestSmokeKnownBad(t *testing.T) {
	units := loadKnownBad(t)
	var buf strings.Builder
	n, err := stochlint.Check(units, stochlint.Analyzers(), &buf)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	if n == 0 {
		t.Fatal("known-bad fixture produced zero diagnostics")
	}
	out := buf.String()
	for _, name := range []string{"detrand", "mapiter", "floataccum", "noalloc", "mergecontract", "locksafe"} {
		if !strings.Contains(out, ": "+name+": ") {
			t.Errorf("no %s diagnostic over the known-bad fixture; output:\n%s", name, out)
		}
	}
}

// TestJSONOutput pins the -json encoding against the known-bad fixture:
// valid JSON, one record per text diagnostic, fields populated, and the
// empty case encoding as [] rather than null.
func TestJSONOutput(t *testing.T) {
	units := loadKnownBad(t)
	diags, err := stochlint.Results(units, stochlint.Analyzers(), nil)
	if err != nil {
		t.Fatalf("results: %v", err)
	}
	if len(diags) == 0 {
		t.Fatal("known-bad fixture produced zero diagnostics")
	}
	var buf strings.Builder
	if err := stochlint.WriteJSON(&buf, diags); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var decoded []stochlint.JSONDiagnostic
	if err := json.Unmarshal([]byte(buf.String()), &decoded); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(decoded) != len(diags) {
		t.Fatalf("JSON carries %d records, text carries %d", len(decoded), len(diags))
	}
	for i, d := range decoded {
		want := diags[i]
		if d.File != want.Pos.Filename || d.Line != want.Pos.Line || d.Col != want.Pos.Column ||
			d.Analyzer != want.Analyzer || d.Message != want.Message {
			t.Errorf("record %d = %+v, want %v", i, d, want)
		}
		if d.File == "" || d.Line == 0 || d.Analyzer == "" || d.Message == "" {
			t.Errorf("record %d has empty fields: %+v", i, d)
		}
	}

	buf.Reset()
	if err := stochlint.WriteJSON(&buf, nil); err != nil {
		t.Fatalf("WriteJSON(nil): %v", err)
	}
	if got := strings.TrimSpace(buf.String()); got != "[]" {
		t.Errorf("empty diagnostics encode as %q, want []", got)
	}
}

func TestListExitsClean(t *testing.T) {
	if got := run([]string{"-list"}); got != 0 {
		t.Fatalf("run(-list) = %d, want 0", got)
	}
}

func TestUnknownAnalyzerIsUsageError(t *testing.T) {
	if got := run([]string{"-only", "nosuch"}); got != 2 {
		t.Fatalf("run(-only nosuch) = %d, want 2", got)
	}
}

// TestRepoClean asserts the real tree carries zero diagnostics — the
// in-process mirror of CI's `go run ./cmd/stochlint ./...`.
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("repo-wide type-check is slow; the CI lint job runs stochlint directly")
	}
	if got := run([]string{"./..."}); got != 0 {
		t.Fatalf("stochlint ./... exit = %d, want 0 (repo must stay lint-clean)", got)
	}
}
