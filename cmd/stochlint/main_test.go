package main

import (
	"strings"
	"testing"

	"stochsynth/internal/analysis/load"
	"stochsynth/internal/analysis/stochlint"
)

// TestSmokeKnownBad drives the full suite over a fixture package that
// violates every invariant and checks each analyzer contributes at least
// one diagnostic to the multichecker output.
func TestSmokeKnownBad(t *testing.T) {
	loader := load.NewSrcLoader("testdata/src")
	units, err := loader.Load("stochsynth/internal/mc")
	if err != nil {
		t.Fatalf("load fixture: %v", err)
	}
	var buf strings.Builder
	n, err := stochlint.Check(units, stochlint.Analyzers(), &buf)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	if n == 0 {
		t.Fatal("known-bad fixture produced zero diagnostics")
	}
	out := buf.String()
	for _, name := range []string{"detrand", "mapiter", "floataccum", "noalloc"} {
		if !strings.Contains(out, ": "+name+": ") {
			t.Errorf("no %s diagnostic over the known-bad fixture; output:\n%s", name, out)
		}
	}
}

func TestListExitsClean(t *testing.T) {
	if got := run([]string{"-list"}); got != 0 {
		t.Fatalf("run(-list) = %d, want 0", got)
	}
}

func TestUnknownAnalyzerIsUsageError(t *testing.T) {
	if got := run([]string{"-only", "nosuch"}); got != 2 {
		t.Fatalf("run(-only nosuch) = %d, want 2", got)
	}
}

// TestRepoClean asserts the real tree carries zero diagnostics — the
// in-process mirror of CI's `go run ./cmd/stochlint ./...`.
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("repo-wide type-check is slow; the CI lint job runs stochlint directly")
	}
	if got := run([]string{"./..."}); got != 0 {
		t.Fatalf("stochlint ./... exit = %d, want 0 (repo must stay lint-clean)", got)
	}
}
