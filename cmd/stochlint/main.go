// Command stochlint is the repository's determinism/hot-path linter: a
// multichecker over the internal/analysis suite (detrand, mapiter,
// floataccum, noalloc, mergecontract, locksafe). See docs/linting.md for
// the invariants each analyzer guards and the //stochlint: annotation
// grammar.
//
// Usage:
//
//	go run ./cmd/stochlint ./...          # whole module (the CI lint job)
//	go run ./cmd/stochlint ./internal/mc  # one package
//	go run ./cmd/stochlint -only detrand,mapiter ./...
//	go run ./cmd/stochlint -json ./...    # machine-readable diagnostics
//	go run ./cmd/stochlint -list
//
// Loader warnings (files excluded because their build constraints cannot
// be evaluated) count as diagnostics: a run that did not see a file must
// not certify it clean.
//
// Exit status: 0 clean, 1 diagnostics reported, 2 usage or load failure.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"stochsynth/internal/analysis/load"
	"stochsynth/internal/analysis/stochlint"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("stochlint", flag.ContinueOnError)
	list := fs.Bool("list", false, "list analyzers and exit")
	only := fs.String("only", "", "comma-separated analyzer names to run (default: all)")
	asJSON := fs.Bool("json", false, "emit diagnostics as a JSON array of {file,line,col,analyzer,message}")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range stochlint.Analyzers() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	var names []string
	if *only != "" {
		names = strings.Split(*only, ",")
	}
	analyzers, err := stochlint.Select(names)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	loader, err := load.NewModuleLoader(cwd)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	units, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	diags, err := stochlint.Results(units, analyzers, loader.Warnings())
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	if *asJSON {
		if err := stochlint.WriteJSON(os.Stdout, diags); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
	} else {
		stochlint.Write(os.Stdout, diags)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "stochlint: %d diagnostic(s)\n", len(diags))
		return 1
	}
	return 0
}
