package main

import "testing"

func TestParseInts(t *testing.T) {
	got, err := parseInts("30, 40,30")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 30 || got[1] != 40 || got[2] != 30 {
		t.Fatalf("parseInts = %v", got)
	}
	if _, err := parseInts("1,x"); err == nil {
		t.Fatal("bad integer accepted")
	}
}

func TestBuildModule(t *testing.T) {
	for _, kind := range []string{"exp2", "log2", "power", "isolation"} {
		net, err := buildModule(kind)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if net.NumReactions() == 0 {
			t.Fatalf("%s: empty network", kind)
		}
	}
	if _, err := buildModule("fourier"); err == nil {
		t.Fatal("unknown module accepted")
	}
}
