// Command crnsynth compiles probabilistic-behaviour specifications into
// chemical reaction networks (the paper's synthesis method) and emits them
// in either the paper's notation or the machine-readable .crn format.
//
// Modes (exactly one):
//
//	-dist w1,w2,...      stochastic module over the weighted outcomes
//	-lambda              the paper's Figure 4 lysis/lysogeny model
//	-response a,b,cinv   lambda-style model for P% = a + b·log2(MOI) + MOI/cinv
//	-module M            deterministic module: exp2 | log2 | power | isolation
//	-poly c0,c1,...      polynomial module: Y = c0 + c1·X + c2·X² + …
//
// Common flags:
//
//	-gamma G   rate separation γ (default 1000; -lambda uses 1e9)
//	-crn       emit parseable .crn instead of paper notation
//
// Examples:
//
//	crnsynth -dist 30,40,30
//	crnsynth -lambda -crn > lambda.crn
//	crnsynth -response 20,4,8
//	crnsynth -module log2
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"stochsynth/internal/chem"
	"stochsynth/internal/lambda"
	"stochsynth/internal/synth"
)

func main() {
	var (
		dist     = flag.String("dist", "", "comma-separated outcome weights, e.g. 30,40,30")
		doLambda = flag.Bool("lambda", false, "emit the paper's Figure 4 model")
		response = flag.String("response", "", "a,b,cinv for P% = a + b·log2(MOI) + MOI/cinv")
		module   = flag.String("module", "", "deterministic module: exp2|log2|power|isolation")
		poly     = flag.String("poly", "", "polynomial coefficients c0,c1,... (Y = Σ ck·X^k)")
		gamma    = flag.Float64("gamma", 1000, "rate separation γ")
		asCRN    = flag.Bool("crn", false, "emit .crn format instead of paper notation")
	)
	flag.Parse()

	modes := 0
	for _, on := range []bool{*dist != "", *doLambda, *response != "", *module != "", *poly != ""} {
		if on {
			modes++
		}
	}
	if modes != 1 {
		fmt.Fprintln(os.Stderr, "crnsynth: choose exactly one of -dist, -lambda, -response, -module, -poly")
		flag.PrintDefaults()
		os.Exit(2)
	}

	var net *chem.Network
	switch {
	case *dist != "":
		weights, err := parseInts(*dist)
		if err != nil {
			fatal(err)
		}
		outcomes := make([]synth.Outcome, len(weights))
		for i, w := range weights {
			outcomes[i] = synth.Outcome{Weight: w}
		}
		mod, err := synth.StochasticSpec{Outcomes: outcomes, Gamma: *gamma}.Build()
		if err != nil {
			fatal(err)
		}
		p := mod.Probabilities()
		fmt.Fprintf(os.Stderr, "programmed distribution: %v\n", p)
		net = mod.Net
	case *doLambda:
		net = lambda.SyntheticModel().Net
	case *response != "":
		vals, err := parseInts(*response)
		if err != nil || len(vals) != 3 {
			fatal(fmt.Errorf("-response wants a,b,cinv (got %q)", *response))
		}
		m, err := lambda.Synthesize(lambda.SynthesisParams{A: vals[0], B: vals[1], CInv: vals[2]})
		if err != nil {
			fatal(err)
		}
		net = m.Net
	case *module != "":
		var err error
		net, err = buildModule(*module)
		if err != nil {
			fatal(err)
		}
	case *poly != "":
		coeffs, err := parseInts(*poly)
		if err != nil {
			fatal(err)
		}
		net, err = synth.PolynomialSpec{Coeffs: coeffs, X: "x", Y: "y"}.Build()
		if err != nil {
			fatal(err)
		}
	}

	if *asCRN {
		os.Stdout.Write(chem.AppendCRN(nil, net))
	} else {
		fmt.Print(chem.Format(net))
	}
}

func buildModule(kind string) (*chem.Network, error) {
	switch kind {
	case "exp2":
		return synth.Exp2Spec{X: "x", Y: "y"}.Build()
	case "log2":
		return synth.Log2Spec{X: "x", Y: "y"}.Build()
	case "power":
		return synth.PowerSpec{X: "x", P: "p", Y: "y"}.Build()
	case "isolation":
		return synth.IsolationSpec{Y: "y", C: "c"}.Build()
	default:
		return nil, fmt.Errorf("unknown module %q (want exp2|log2|power|isolation)", kind)
	}
}

func parseInts(s string) ([]int64, error) {
	parts := strings.Split(s, ",")
	out := make([]int64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseInt(strings.TrimSpace(p), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("invalid integer %q", p)
		}
		out = append(out, v)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "crnsynth:", err)
	os.Exit(1)
}
