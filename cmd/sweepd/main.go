// Command sweepd runs distributed Monte Carlo sweeps over the named trial
// factories in shard.Builtin (see docs/sharding.md).
//
// Worker mode executes exactly one shard, speaking the versioned JSON
// wire format on its standard streams:
//
//	sweepd -worker < shardspec.json > shardresult.json
//
// Coordinator mode partitions a sweep, fans the shards out, and merges:
//
//	sweepd -sweep lambda/natural -params 1,2,3 -trials 100000 -shards 8
//
// By default shards run in-process; with -procs each shard runs in a
// fresh worker process (this binary re-exec'd with -worker), the same
// path a multi-machine deployment uses. Either way the merged tallies are
// bit-for-bit identical to a single-process mc.Sweep run.
//
// Flags (coordinator mode):
//
//	-sweep NAME    sweep id (see -list; arity/kind come from the registry)
//	-params LIST   comma-separated parameter grid (MOIs, or γ for fig3)
//	-trials N      total Monte Carlo trials per grid point
//	-seed S        base RNG seed (default 2007)
//	-shards K      number of shards to partition the trials into
//	-procs         one worker process per shard instead of in-process
//	-parallel P    concurrent shard dispatches (0 = one at a time; every
//	               shard already parallelises across the machine's cores)
//	-retries R     re-dispatch attempts per failing shard (default 1)
//	-list          print the registered sweep ids and exit
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"stochsynth/internal/mc"
	"stochsynth/internal/plot"
	"stochsynth/internal/shard"
)

func main() {
	var (
		worker   = flag.Bool("worker", false, "read one ShardSpec JSON from stdin, write its ShardResult JSON to stdout")
		sweep    = flag.String("sweep", "", "sweep id to coordinate (see -list)")
		params   = flag.String("params", "", "comma-separated parameter grid")
		trials   = flag.Int("trials", 20000, "total Monte Carlo trials per grid point")
		seed     = flag.Uint64("seed", 2007, "base RNG seed")
		shards   = flag.Int("shards", 4, "number of shards")
		procs    = flag.Bool("procs", false, "run each shard in a fresh worker process")
		parallel = flag.Int("parallel", 0, "concurrent shard dispatches (0 = one at a time)")
		retries  = flag.Int("retries", 1, "re-dispatch attempts per failing shard")
		list     = flag.Bool("list", false, "list registered sweep ids and exit")
	)
	flag.Parse()

	reg := shard.Builtin()
	switch {
	case *list:
		for _, name := range reg.Names() {
			fmt.Println(name)
		}
	case *worker:
		if err := runWorker(reg, os.Stdin, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "sweepd:", err)
			os.Exit(1)
		}
	default:
		if err := coordinate(reg, *sweep, *params, *trials, *seed, *shards, *procs, *parallel, *retries); err != nil {
			fmt.Fprintln(os.Stderr, "sweepd:", err)
			os.Exit(1)
		}
	}
}

// runWorker is the cross-process leg of the protocol: one ShardSpec in,
// one ShardResult out.
func runWorker(reg *shard.Registry, in io.Reader, out io.Writer) error {
	payload, err := io.ReadAll(in)
	if err != nil {
		return fmt.Errorf("reading spec: %w", err)
	}
	spec, err := shard.DecodeSpec(payload)
	if err != nil {
		return err
	}
	res, err := shard.Run(spec, reg)
	if err != nil {
		return err
	}
	encoded, err := res.Encode()
	if err != nil {
		return err
	}
	_, err = out.Write(append(encoded, '\n'))
	return err
}

func coordinate(reg *shard.Registry, sweep, params string, trials int, seed uint64, shards_ int, procs bool, parallel, retries int) error {
	if sweep == "" {
		return fmt.Errorf("missing -sweep (known: %s); or use -worker / -list", strings.Join(reg.Names(), ", "))
	}
	grid, err := parseGrid(params)
	if err != nil {
		return err
	}
	// The registry is the source of truth for the sweep's kind and arity;
	// the CLI only names it.
	factory, err := reg.Lookup(sweep)
	if err != nil {
		return err
	}
	spec := shard.SweepSpec{
		Sweep: sweep, Grid: grid, Trials: trials, Seed: seed,
		Outcomes: factory.Outcomes, Numeric: factory.Numeric,
	}

	runner := shard.LocalRunner(reg)
	mode := "in-process"
	if procs {
		self, err := os.Executable()
		if err != nil {
			return fmt.Errorf("locating own binary for -procs: %w", err)
		}
		runner = shard.ExecRunner(self, "-worker")
		mode = "worker processes"
	}
	// Every shard already parallelises across the machine's cores
	// (in-process via mc's worker pool, -procs via each worker's own
	// pool), so dispatching one at a time is the no-oversubscription
	// default; -parallel opts into concurrent dispatch. Tallies are
	// identical either way.
	opts := shard.Options{Retries: retries, Parallel: parallel}
	if opts.Parallel <= 0 {
		opts.Parallel = 1
	}

	start := time.Now()
	merged, err := shard.Coordinate(spec, shards_, runner, opts)
	if err != nil {
		return err
	}
	elapsed := time.Since(start).Round(time.Millisecond)

	if spec.Numeric {
		renderNumeric(merged, grid)
	} else {
		renderTally(merged, grid, spec.Outcomes)
	}
	fmt.Printf("%d shards (%s), %s\n", shards_, mode, elapsed)
	return nil
}

func renderTally(merged shard.ShardResult, grid []float64, outcomes int) {
	headers := []string{"param", "trials"}
	for o := 0; o < outcomes; o++ {
		headers = append(headers, fmt.Sprintf("p%d", o))
	}
	headers = append(headers, "none", fmt.Sprintf("95%% Wilson (p%d)", outcomes-1))
	tab := plot.Table{Headers: headers}
	for i := range grid {
		res, err := merged.ResultAt(i)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		row := []string{fmt.Sprintf("%g", grid[i]), fmt.Sprintf("%d", res.Trials)}
		for o := 0; o < outcomes; o++ {
			row = append(row, fmt.Sprintf("%.4f", res.Fraction(o)))
		}
		lo, hi := res.Proportion(outcomes - 1).Wilson(mc.Z95)
		row = append(row, fmt.Sprintf("%d", res.None), fmt.Sprintf("[%.4f, %.4f]", lo, hi))
		tab.Add(row...)
	}
	fmt.Print(tab.Render())
}

func renderNumeric(merged shard.ShardResult, grid []float64) {
	tab := plot.Table{Headers: []string{"param", "trials", "mean", "stderr", "min", "max"}}
	for i := range grid {
		s, err := merged.SummaryAt(i)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		tab.Add(
			fmt.Sprintf("%g", grid[i]),
			fmt.Sprintf("%d", s.N),
			fmt.Sprintf("%.6g", s.Mean),
			fmt.Sprintf("%.3g", s.StdErr()),
			fmt.Sprintf("%g", s.Min),
			fmt.Sprintf("%g", s.Max),
		)
	}
	fmt.Print(tab.Render())
}

func parseGrid(s string) ([]float64, error) {
	if strings.TrimSpace(s) == "" {
		return nil, fmt.Errorf("missing -params")
	}
	var grid []float64
	for _, field := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(field), 64)
		if err != nil {
			return nil, fmt.Errorf("bad -params value %q: %w", field, err)
		}
		grid = append(grid, v)
	}
	return grid, nil
}
