// Command sweepd runs distributed Monte Carlo sweeps over the named trial
// factories in shard.Builtin (see docs/sharding.md).
//
// Worker modes execute shards for a remote coordinator. One-shot worker
// mode speaks the versioned JSON wire format on its standard streams:
//
//	sweepd -worker < shardspec.json > shardresult.json
//
// Serve mode runs a long-lived network worker: a TCP server speaking the
// length-prefixed, checksummed shard framing (shard.Serve), drained
// gracefully on SIGINT/SIGTERM:
//
//	sweepd -serve 0.0.0.0:7471
//
// Coordinator mode partitions a sweep, fans the shards out, and merges:
//
//	sweepd -sweep lambda/natural -params 1,2,3 -trials 100000 -shards 8
//
// Model mode (wire format v3) coordinates a sweep over a user-submitted
// network instead of a registered factory: the reaction-text file is
// carried inside every ShardSpec, so workers — including -serve fleets
// that have never seen the model — validate, compile and run it
// themselves. The sweep id is the content address of the model
// (NetworkSpec.SweepID), so reruns and journal resumes merge exactly:
//
//	sweepd -model toggle.crn -obs race -obs-a a:40 -obs-b b:40 \
//	       -param-rate mka -params 50,100 -trials 20000
//
// By default shards run in-process; with -procs each shard runs in a
// fresh worker process (this binary re-exec'd with -worker), and with
// -workers the shards are dispatched over TCP to a fleet of -serve
// workers. Either way the merged tallies are bit-for-bit identical to a
// single-process mc.Sweep run. The -dist sweeps accumulate full
// distribution summaries per grid point (moments, quantile sketch,
// fixed-bin histogram, first-passage steps) with the same bit-for-bit
// merge guarantee. With -journal every completed shard is
// durably logged first, so a killed coordinator rerun with the same
// command resumes from the journal and computes only the missing trials.
//
// Flags (coordinator mode):
//
//	-sweep NAME    sweep id (see -list; arity/kind come from the registry)
//	-params LIST   comma-separated parameter grid (MOIs, or γ for fig3)
//	-trials N      total Monte Carlo trials per grid point
//	-seed S        base RNG seed (default 2007)
//	-shards K      number of shards to partition the trials into
//	-procs         one worker process per shard instead of in-process
//	-workers LIST  comma-separated worker addresses (sweepd -serve fleet)
//	-shard-timeout D  per-shard network deadline (hung workers time out)
//	-journal PATH  crash-safe shard journal; an existing journal resumes
//	-parallel P    concurrent shard dispatches (0 = one at a time; every
//	               shard already parallelises across the machine's cores)
//	-retries R     re-dispatch attempts per failing shard (default 1)
//	-list          print the registered sweep ids and exit
//
// Flags (model mode, replacing -sweep):
//
//	-model FILE         network in the chem reaction-text format
//	-obs KIND           observable kind: race or endpoint
//	-obs-a SPECIES:N    first race threshold / endpoint classification split
//	-obs-b SPECIES:N    second race threshold (race only)
//	-obs-value SPECIES  species whose final count is the observable value
//	                    (default: the margin count(A) − count(B))
//	-param-species NAME grid values set this species' initial count
//	-param-rate LABEL   grid values set the rate of reactions labeled LABEL
//	-engine KIND        simulation engine (default: optimized exact engine)
//	-max-steps N        per-trial jump-chain bound (default: the wire default)
//	-hist LO:WIDTH:BINS histogram layout; makes the sweep a distribution
//	                    sweep (full per-point summaries, like -dist sweeps)
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"stochsynth/internal/mc"
	"stochsynth/internal/plot"
	"stochsynth/internal/scenario"
	"stochsynth/internal/shard"
)

func main() {
	var (
		worker   = flag.Bool("worker", false, "read one ShardSpec JSON from stdin, write its ShardResult JSON to stdout")
		serve    = flag.String("serve", "", "serve shards over TCP on this listen address (host:port; :0 picks a port)")
		sweep    = flag.String("sweep", "", "sweep id to coordinate (see -list)")
		params   = flag.String("params", "", "comma-separated parameter grid")
		trials   = flag.Int("trials", 20000, "total Monte Carlo trials per grid point")
		seed     = flag.Uint64("seed", 2007, "base RNG seed")
		shards   = flag.Int("shards", 4, "number of shards")
		procs    = flag.Bool("procs", false, "run each shard in a fresh worker process")
		workers  = flag.String("workers", "", "comma-separated addresses of sweepd -serve workers to dispatch to")
		shardTO  = flag.Duration("shard-timeout", 0, "per-shard network round-trip deadline (0 = none); a hung worker's shards time out and retry elsewhere")
		journal  = flag.String("journal", "", "crash-safe shard journal path; an existing journal resumes the sweep")
		parallel = flag.Int("parallel", 0, "concurrent shard dispatches (0 = one at a time)")
		retries  = flag.Int("retries", 1, "re-dispatch attempts per failing shard")
		list     = flag.Bool("list", false, "list registered sweep ids and exit")

		model        = flag.String("model", "", "network file (chem reaction-text format) to sweep instead of a registered -sweep")
		obsKind      = flag.String("obs", "race", "model observable kind: race or endpoint")
		obsA         = flag.String("obs-a", "", "model observable species A threshold, SPECIES:COUNT")
		obsB         = flag.String("obs-b", "", "model observable species B threshold, SPECIES:COUNT (race only)")
		obsValue     = flag.String("obs-value", "", "model observable value species (default: margin A−B)")
		paramSpecies = flag.String("param-species", "", "model param action: grid value sets this species' initial count")
		paramRate    = flag.String("param-rate", "", "model param action: grid value sets the rate of reactions with this label")
		engine       = flag.String("engine", "", "model simulation engine kind (default: optimized exact engine)")
		maxSteps     = flag.Int64("max-steps", 0, "model per-trial jump-chain step bound (0 = wire default)")
		hist         = flag.String("hist", "", "model histogram layout LO:WIDTH:BINS; set to run a distribution sweep")
	)
	flag.Parse()

	reg := shard.Builtin()
	scenario.Register(reg)
	modelSpec := modelFlags{
		path: *model, obs: *obsKind, a: *obsA, b: *obsB, value: *obsValue,
		paramSpecies: *paramSpecies, paramRate: *paramRate,
		engine: *engine, maxSteps: *maxSteps, hist: *hist,
	}
	switch {
	case *list:
		for _, name := range reg.Names() {
			fmt.Println(name)
		}
	case *worker:
		if err := runWorker(reg, os.Stdin, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "sweepd:", err)
			os.Exit(1)
		}
	case *serve != "":
		if err := serveWorker(reg, *serve); err != nil {
			fmt.Fprintln(os.Stderr, "sweepd:", err)
			os.Exit(1)
		}
	default:
		if err := coordinate(reg, *sweep, modelSpec, *params, *trials, *seed, *shards, *procs, *workers, *shardTO, *journal, *parallel, *retries); err != nil {
			fmt.Fprintln(os.Stderr, "sweepd:", err)
			os.Exit(1)
		}
	}
}

// modelFlags bundles the -model flag set; zero path means registry mode.
type modelFlags struct {
	path, obs, a, b, value  string
	paramSpecies, paramRate string
	engine                  string
	maxSteps                int64
	hist                    string
}

// networkSpec builds and validates the wire payload from the -model
// flags. The heavy validation (parse, limits, species resolution) is
// shard.ShardSpec.Validate's job; this only assembles the spec shape.
func (m modelFlags) networkSpec() (*shard.NetworkSpec, error) {
	raw, err := os.ReadFile(m.path)
	if err != nil {
		return nil, err
	}
	ns := &shard.NetworkSpec{
		CRN:      string(raw),
		Engine:   m.engine,
		MaxSteps: m.maxSteps,
	}
	ns.Observable.Kind = m.obs
	if ns.Observable.SpeciesA, ns.Observable.CountA, err = parseThreshold(m.a); err != nil {
		return nil, fmt.Errorf("-obs-a: %w", err)
	}
	if m.b != "" {
		if ns.Observable.SpeciesB, ns.Observable.CountB, err = parseThreshold(m.b); err != nil {
			return nil, fmt.Errorf("-obs-b: %w", err)
		}
	}
	ns.Observable.Value = m.value
	switch {
	case m.paramSpecies != "" && m.paramRate != "":
		return nil, fmt.Errorf("-param-species and -param-rate are mutually exclusive")
	case m.paramSpecies != "":
		ns.Param = &shard.ParamSpec{Species: m.paramSpecies}
	case m.paramRate != "":
		ns.Param = &shard.ParamSpec{Rate: m.paramRate}
	}
	if m.hist != "" {
		hc, err := parseHist(m.hist)
		if err != nil {
			return nil, fmt.Errorf("-hist: %w", err)
		}
		ns.Hist = &hc
	}
	return ns, nil
}

// parseThreshold splits "species:count".
func parseThreshold(s string) (string, int64, error) {
	name, countStr, ok := strings.Cut(s, ":")
	if !ok || name == "" {
		return "", 0, fmt.Errorf("want SPECIES:COUNT, got %q", s)
	}
	count, err := strconv.ParseInt(countStr, 10, 64)
	if err != nil {
		return "", 0, fmt.Errorf("bad count in %q: %w", s, err)
	}
	return name, count, nil
}

// parseHist splits "lo:width:bins".
func parseHist(s string) (mc.HistConfig, error) {
	parts := strings.Split(s, ":")
	if len(parts) != 3 {
		return mc.HistConfig{}, fmt.Errorf("want LO:WIDTH:BINS, got %q", s)
	}
	lo, err1 := strconv.ParseInt(parts[0], 10, 64)
	width, err2 := strconv.ParseInt(parts[1], 10, 64)
	bins, err3 := strconv.Atoi(parts[2])
	for _, err := range []error{err1, err2, err3} {
		if err != nil {
			return mc.HistConfig{}, fmt.Errorf("bad layout %q: %w", s, err)
		}
	}
	return mc.HistConfig{Lo: lo, Width: width, Bins: bins}, nil
}

// serveWorker runs the long-lived network worker until SIGINT/SIGTERM,
// then drains: in-flight shards finish and their results are delivered
// before the process exits.
func serveWorker(reg *shard.Registry, addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	srv := shard.Serve(ln, reg)
	// The resolved address line is the readiness signal scripts and tests
	// wait for (and, with ":0", the only way to learn the port).
	fmt.Printf("sweepd: serving %s\n", srv.Addr())
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("sweepd: draining")
	srv.Drain()
	return nil
}

// runWorker is the cross-process leg of the protocol: one ShardSpec in,
// one ShardResult out.
func runWorker(reg *shard.Registry, in io.Reader, out io.Writer) error {
	payload, err := io.ReadAll(in)
	if err != nil {
		return fmt.Errorf("reading spec: %w", err)
	}
	spec, err := shard.DecodeSpec(payload)
	if err != nil {
		return err
	}
	if os.Getenv("SWEEPD_FAULT") == "worker-panic" {
		// Fault-injection hook (tests, chaos drills): die the way a buggy
		// trial body would, so the coordinator-side stderr capture is
		// exercised against a real panic stack.
		panic("injected worker fault (SWEEPD_FAULT=worker-panic)")
	}
	res, err := shard.Run(spec, reg)
	if err != nil {
		return err
	}
	encoded, err := res.Encode()
	if err != nil {
		return err
	}
	_, err = out.Write(append(encoded, '\n'))
	return err
}

func coordinate(reg *shard.Registry, sweep string, model modelFlags, params string, trials int, seed uint64, shards_ int, procs bool, workers string, shardTimeout time.Duration, journal string, parallel, retries int) error {
	if sweep == "" && model.path == "" {
		return fmt.Errorf("missing -sweep (known: %s) or -model; or use -worker / -serve / -list", strings.Join(reg.Names(), ", "))
	}
	if sweep != "" && model.path != "" {
		return fmt.Errorf("-sweep and -model are mutually exclusive")
	}
	if procs && workers != "" {
		return fmt.Errorf("-procs and -workers are mutually exclusive")
	}
	grid, err := parseGrid(params)
	if err != nil {
		return err
	}
	var spec shard.SweepSpec
	if model.path != "" {
		ns, err := model.networkSpec()
		if err != nil {
			return err
		}
		// The sweep id is the model's content address: any rerun of the
		// same model (and any other coordinator submitting it) shards
		// under the same identity, which is what lets journals resume it.
		id, err := ns.SweepID()
		if err != nil {
			return err
		}
		spec = shard.SweepSpec{
			Sweep: id, Grid: grid, Trials: trials, Seed: seed,
			Outcomes: shard.NetworkOutcomes, Dist: ns.Hist != nil, Network: ns,
		}
		fmt.Printf("model %s: sweep %s\n", model.path, id)
	} else {
		// The registry is the source of truth for the sweep's kind and
		// arity; the CLI only names it.
		factory, err := reg.Lookup(sweep)
		if err != nil {
			return err
		}
		spec = shard.SweepSpec{
			Sweep: sweep, Grid: grid, Trials: trials, Seed: seed,
			Outcomes: factory.Outcomes, Numeric: factory.Numeric, Dist: factory.Dist,
		}
	}

	runner := shard.LocalRunner(reg)
	mode := "in-process"
	switch {
	case procs:
		self, err := os.Executable()
		if err != nil {
			return fmt.Errorf("locating own binary for -procs: %w", err)
		}
		runner = shard.ExecRunner(self, "-worker")
		mode = "worker processes"
	case workers != "":
		addrs := strings.Split(workers, ",")
		for i := range addrs {
			addrs[i] = strings.TrimSpace(addrs[i])
		}
		// Without a ShardTimeout a hung (not dead) worker blocks its
		// shards forever — the retry machinery only fires on errors.
		pool, err := shard.NewRemotePool(addrs, shard.RemoteOptions{ShardTimeout: shardTimeout})
		if err != nil {
			return err
		}
		defer pool.Close()
		runner = pool.Runner()
		mode = fmt.Sprintf("%d network workers", len(addrs))
	}
	// Every shard already parallelises across the machine's cores
	// (in-process via mc's worker pool, -procs/-workers via each worker's
	// own pool), so dispatching one at a time is the no-oversubscription
	// default; -parallel opts into concurrent dispatch. Tallies are
	// identical either way.
	opts := shard.Options{Retries: retries, Parallel: parallel}
	if opts.Parallel <= 0 {
		opts.Parallel = 1
	}
	opts.OnShardDone = progressHook()

	start := time.Now()
	var merged shard.ShardResult
	if journal != "" {
		merged, err = shard.ResumeCoordinate(spec, journal, shards_, runner, opts)
	} else {
		merged, err = shard.Coordinate(spec, shards_, runner, opts)
	}
	if err != nil {
		return err
	}
	elapsed := time.Since(start).Round(time.Millisecond)

	switch {
	case spec.Dist:
		renderDist(merged, grid, spec.Outcomes)
	case spec.Numeric:
		renderNumeric(merged, grid)
	default:
		renderTally(merged, grid, spec.Outcomes)
	}
	fmt.Printf("%d shards (%s), %s\n", shards_, mode, elapsed)
	return nil
}

// progressHook reports per-shard completion on stderr (results tables stay
// on stdout) and implements the deterministic crash hook
// SWEEPD_FAULT=die-after=K: exit hard — journal already fsync'd, nothing
// flushed gracefully — after the Kth completed shard, which is how the
// crash-recovery smoke kills a coordinator at an exact point.
func progressHook() func(done, total int, res shard.ShardResult) {
	dieAfter := 0
	if fault, ok := strings.CutPrefix(os.Getenv("SWEEPD_FAULT"), "die-after="); ok {
		dieAfter, _ = strconv.Atoi(fault)
	}
	var mu sync.Mutex
	return func(done, total int, res shard.ShardResult) {
		mu.Lock()
		defer mu.Unlock()
		fmt.Fprintf(os.Stderr, "sweepd: shard %v done (%d/%d)\n", res.Ranges, done, total)
		if dieAfter > 0 && done >= dieAfter {
			fmt.Fprintln(os.Stderr, "sweepd: injected crash (SWEEPD_FAULT=die-after)")
			os.Exit(137)
		}
	}
}

func renderTally(merged shard.ShardResult, grid []float64, outcomes int) {
	headers := []string{"param", "trials"}
	for o := 0; o < outcomes; o++ {
		headers = append(headers, fmt.Sprintf("p%d", o))
	}
	headers = append(headers, "none", fmt.Sprintf("95%% Wilson (p%d)", outcomes-1))
	tab := plot.Table{Headers: headers}
	for i := range grid {
		res, err := merged.ResultAt(i)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		row := []string{fmt.Sprintf("%g", grid[i]), fmt.Sprintf("%d", res.Trials)}
		for o := 0; o < outcomes; o++ {
			row = append(row, fmt.Sprintf("%.4f", res.Fraction(o)))
		}
		lo, hi := res.Proportion(outcomes - 1).Wilson(mc.Z95)
		row = append(row, fmt.Sprintf("%d", res.None), fmt.Sprintf("[%.4f, %.4f]", lo, hi))
		tab.Add(row...)
	}
	fmt.Print(tab.Render())
}

func renderNumeric(merged shard.ShardResult, grid []float64) {
	tab := plot.Table{Headers: []string{"param", "trials", "mean", "stderr", "min", "max"}}
	for i := range grid {
		s, err := merged.SummaryAt(i)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		tab.Add(
			fmt.Sprintf("%g", grid[i]),
			fmt.Sprintf("%d", s.N),
			fmt.Sprintf("%.6g", s.Mean),
			fmt.Sprintf("%.3g", s.StdErr()),
			fmt.Sprintf("%g", s.Min),
			fmt.Sprintf("%g", s.Max),
		)
	}
	fmt.Print(tab.Render())
}

// renderDist prints one row per grid point of a distribution sweep: the
// moment summary of the continuous observable, its sketch quantiles, the
// histogram's mode bin, and the per-outcome mean first-passage step
// counts.
func renderDist(merged shard.ShardResult, grid []float64, outcomes int) {
	headers := []string{"param", "trials", "mean", "p10", "p50", "p90", "hist mode"}
	for o := 0; o < outcomes; o++ {
		headers = append(headers, fmt.Sprintf("p%d", o), fmt.Sprintf("steps%d", o))
	}
	headers = append(headers, "none")
	tab := plot.Table{Headers: headers}
	for i := range grid {
		d, err := merged.DistAt(i)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		s := d.Moments.Summary()
		row := []string{
			fmt.Sprintf("%g", grid[i]),
			fmt.Sprintf("%d", d.N()),
			fmt.Sprintf("%.6g", s.Mean),
			fmt.Sprintf("%.6g", d.Sketch.Quantile(0.1)),
			fmt.Sprintf("%.6g", d.Sketch.Quantile(0.5)),
			fmt.Sprintf("%.6g", d.Sketch.Quantile(0.9)),
			fmt.Sprintf("%d", d.Hist.Mode()),
		}
		for o := 0; o < outcomes; o++ {
			row = append(row,
				fmt.Sprintf("%.4f", d.FPT.Proportion(o).Estimate()),
				fmt.Sprintf("%.1f", d.FPT.MeanSteps(o)))
		}
		row = append(row, fmt.Sprintf("%d", d.FPT.Unresolved.Count))
		tab.Add(row...)
	}
	fmt.Print(tab.Render())
}

func parseGrid(s string) ([]float64, error) {
	if strings.TrimSpace(s) == "" {
		return nil, fmt.Errorf("missing -params")
	}
	var grid []float64
	for _, field := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(field), 64)
		if err != nil {
			return nil, fmt.Errorf("bad -params value %q: %w", field, err)
		}
		grid = append(grid, v)
	}
	return grid, nil
}
