package main

import (
	"os/exec"
	"path/filepath"
	"testing"

	"stochsynth/internal/lambda"
	"stochsynth/internal/mc"
	"stochsynth/internal/rng"
	"stochsynth/internal/shard"
	"stochsynth/internal/sim"
	"stochsynth/internal/synth"
)

// buildSweepd compiles this command into a scratch binary so tests can
// exercise the real cross-process worker protocol.
func buildSweepd(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "sweepd")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building sweepd: %v\n%s", err, out)
	}
	return bin
}

func TestWorkerProtocolRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs a child binary")
	}
	bin := buildSweepd(t)
	spec := shard.SweepSpec{
		Sweep: shard.SweepLambdaSynthetic, Grid: []float64{1, 5}, Trials: 200, Seed: 42, Outcomes: 2,
	}
	viaProcess, err := shard.ExecRunner(bin, "-worker")(spec.Shard(50, 150))
	if err != nil {
		t.Fatal(err)
	}
	inProcess, err := shard.Run(spec.Shard(50, 150), shard.Builtin())
	if err != nil {
		t.Fatal(err)
	}
	wire1, err := viaProcess.Encode()
	if err != nil {
		t.Fatal(err)
	}
	wire2, err := inProcess.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if string(wire1) != string(wire2) {
		t.Fatalf("worker process result differs from in-process run:\n%s\nvs\n%s", wire1, wire2)
	}
}

// TestFourProcessNaturalLambdaMatchesCharacterize is the chi-square
// end-to-end check: the natural lambda model's outcome tally, sharded
// across 4 worker processes (each a fresh exec of the sweepd worker mode)
// and merged, must be *identical* to the single-process Characterize
// result — bit-for-bit equal counts, hence a χ² homogeneity statistic of
// exactly zero.
func TestFourProcessNaturalLambdaMatchesCharacterize(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs child binaries")
	}
	const (
		moi    = int64(3)
		trials = 4000
		seed   = uint64(2007)
	)
	bin := buildSweepd(t)
	spec := shard.SweepSpec{
		Sweep: shard.SweepLambdaNatural, Grid: []float64{float64(moi)},
		Trials: trials, Seed: seed, Outcomes: 2,
	}
	merged, err := shard.Coordinate(spec, 4, shard.ExecRunner(bin, "-worker"), shard.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := merged.ResultAt(0)
	if err != nil {
		t.Fatal(err)
	}

	natural, err := lambda.NaturalModel(lambda.NaturalParams{})
	if err != nil {
		t.Fatal(err)
	}
	single := natural.Characterize(moi, trials, mc.PointSeed(seed, 0))

	if sharded.Trials != single.Trials || sharded.None != single.None {
		t.Fatalf("sharded trials/none %d/%d, single-process %d/%d",
			sharded.Trials, sharded.None, single.Trials, single.None)
	}
	for o, c := range single.Counts {
		if sharded.Counts[o] != c {
			t.Fatalf("outcome %d: sharded %d, single-process %d", o, sharded.Counts[o], c)
		}
	}

	// The merged distribution is the single-process distribution, so the
	// χ² homogeneity statistic against it is exactly zero.
	classified := single.Counts[lambda.Lysis] + single.Counts[lambda.Lysogeny]
	probs := []float64{
		float64(single.Counts[lambda.Lysis]) / float64(classified),
		float64(single.Counts[lambda.Lysogeny]) / float64(classified),
	}
	stat, err := mc.ChiSquare(sharded.Counts, probs)
	if err != nil {
		t.Fatal(err)
	}
	if stat != 0 {
		t.Fatalf("χ² between merged and single-process tallies = %v, want exactly 0", stat)
	}
}

// TestFigure3ScaleSweepMatchesMcSweep pins the headline guarantee at the
// paper's measurement scale: a Figure 3 error-rate sweep, sharded across
// 4 worker processes via cmd/sweepd, merges to tallies bit-for-bit
// identical to a plain single-process mc.Sweep over the same γ grid
// (fresh-engine trials, no sharding machinery on the reference side).
func TestFigure3ScaleSweepMatchesMcSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs child binaries; runs a large sweep")
	}
	gammas := []float64{1, 10, 100}
	trials := 100000 // the paper's "100,000 trials" scale
	const seed = uint64(7)

	bin := buildSweepd(t)
	spec := shard.SweepSpec{
		Sweep: shard.SweepFig3Error, Grid: gammas, Trials: trials, Seed: seed, Outcomes: 2,
	}
	merged, err := shard.Coordinate(spec, 4, shard.ExecRunner(bin, "-worker"), shard.Options{Retries: 1})
	if err != nil {
		t.Fatal(err)
	}
	got, err := merged.SweepPoints()
	if err != nil {
		t.Fatal(err)
	}

	want := mc.Sweep(mc.Config{Trials: trials, Outcomes: 2, Seed: seed}, gammas,
		func(gamma float64) mc.Trial {
			mod, err := synth.Figure3Spec(gamma).Build()
			if err != nil {
				t.Fatal(err)
			}
			classify := synth.Figure3Classifier(mod)
			return func(gen *rng.PCG) int {
				return classify(sim.NewOptimizedDirect(mod.Net, gen))
			}
		})

	for i := range want {
		w, g := want[i].Result, got[i].Result
		if w.Trials != g.Trials || w.None != g.None {
			t.Fatalf("γ=%v: trials/none %d/%d, want %d/%d", gammas[i], g.Trials, g.None, w.Trials, w.None)
		}
		for o := range w.Counts {
			if w.Counts[o] != g.Counts[o] {
				t.Fatalf("γ=%v outcome %d: sharded %d, mc.Sweep %d", gammas[i], o, g.Counts[o], w.Counts[o])
			}
		}
	}
}
