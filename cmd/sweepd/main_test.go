package main

import (
	"bufio"
	"bytes"
	"math"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"stochsynth/internal/lambda"
	"stochsynth/internal/mc"
	"stochsynth/internal/rng"
	"stochsynth/internal/shard"
	"stochsynth/internal/sim"
	"stochsynth/internal/synth"
)

// buildSweepd compiles this command into a scratch binary so tests can
// exercise the real cross-process worker protocol.
func buildSweepd(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "sweepd")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building sweepd: %v\n%s", err, out)
	}
	return bin
}

// startServeWorker launches a real `sweepd -serve` process on a loopback
// port and waits for its readiness line, returning the resolved address.
func startServeWorker(t *testing.T, bin string) (string, *exec.Cmd) {
	t.Helper()
	cmd := exec.Command(bin, "-serve", "127.0.0.1:0")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})
	sc := bufio.NewScanner(stdout)
	for sc.Scan() {
		if addr, ok := strings.CutPrefix(sc.Text(), "sweepd: serving "); ok {
			return addr, cmd
		}
	}
	t.Fatalf("worker never reported readiness (stdout closed: %v)", sc.Err())
	return "", nil
}

func encodedOrDie(t *testing.T, res shard.ShardResult) []byte {
	t.Helper()
	enc, err := res.Encode()
	if err != nil {
		t.Fatal(err)
	}
	return enc
}

// TestServeWorkersMatchSingleProcess is the network end-to-end check:
// three real `sweepd -serve` processes on loopback serve a natural-lambda
// tally and a numeric Figure 3 sweep through RemoteRunner, and both merge
// exactly — χ² of 0 against Characterize for the tally, bit-identical
// moments against mc.SweepNumeric for the numeric sweep.
func TestServeWorkersMatchSingleProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs child binaries")
	}
	bin := buildSweepd(t)
	var addrs []string
	for i := 0; i < 3; i++ {
		addr, _ := startServeWorker(t, bin)
		addrs = append(addrs, addr)
	}
	pool, err := shard.NewRemotePool(addrs, shard.RemoteOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	// Natural-lambda tally over the fleet ≡ single-process Characterize.
	const (
		moi    = int64(3)
		trials = 3000
		seed   = uint64(2007)
	)
	tallySpec := shard.SweepSpec{
		Sweep: shard.SweepLambdaNatural, Grid: []float64{float64(moi)},
		Trials: trials, Seed: seed, Outcomes: 2,
	}
	merged, err := shard.Coordinate(tallySpec, 6, pool.Runner(), shard.Options{Parallel: 3, Retries: 1})
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := merged.ResultAt(0)
	if err != nil {
		t.Fatal(err)
	}
	natural, err := lambda.NaturalModel(lambda.NaturalParams{})
	if err != nil {
		t.Fatal(err)
	}
	single := natural.Characterize(moi, trials, mc.PointSeed(seed, 0))
	if sharded.Trials != single.Trials || sharded.None != single.None {
		t.Fatalf("network trials/none %d/%d, single-process %d/%d",
			sharded.Trials, sharded.None, single.Trials, single.None)
	}
	for o, c := range single.Counts {
		if sharded.Counts[o] != c {
			t.Fatalf("outcome %d: network %d, single-process %d", o, sharded.Counts[o], c)
		}
	}
	classified := single.Counts[lambda.Lysis] + single.Counts[lambda.Lysogeny]
	probs := []float64{
		float64(single.Counts[lambda.Lysis]) / float64(classified),
		float64(single.Counts[lambda.Lysogeny]) / float64(classified),
	}
	if stat, err := mc.ChiSquare(sharded.Counts, probs); err != nil || stat != 0 {
		t.Fatalf("χ² between network and single-process tallies = %v (err %v), want exactly 0", stat, err)
	}

	// Numeric Figure 3 moments over the fleet ≡ mc.SweepNumeric bitwise.
	gammas := []float64{1, 100}
	numTrials := 400
	numSpec := shard.SweepSpec{
		Sweep: shard.SweepFig3Numeric, Grid: gammas, Trials: numTrials, Seed: 5, Numeric: true,
	}
	numMerged, err := shard.Coordinate(numSpec, 6, pool.Runner(), shard.Options{Parallel: 3, Retries: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := mc.SweepNumeric(mc.Config{Trials: numTrials, Seed: 5}, gammas,
		func(gamma float64) mc.NumericTrial {
			mod, err := synth.Figure3Spec(gamma).Build()
			if err != nil {
				t.Fatal(err)
			}
			classify := synth.Figure3Classifier(mod)
			protected := mod.ProtectedSpecies()
			return func(gen *rng.PCG) float64 {
				return float64(classify(sim.MustEngineOfKind("", mod.Net, protected, gen)))
			}
		})
	for i := range gammas {
		s, err := numMerged.SummaryAt(i)
		if err != nil {
			t.Fatal(err)
		}
		w := want[i].Summary
		if s.N != w.N ||
			math.Float64bits(s.Mean) != math.Float64bits(w.Mean) ||
			math.Float64bits(s.Var) != math.Float64bits(w.Var) ||
			math.Float64bits(s.Min) != math.Float64bits(w.Min) ||
			math.Float64bits(s.Max) != math.Float64bits(w.Max) {
			t.Fatalf("γ=%v: network summary %+v, want bit-identical %+v", gammas[i], s, w)
		}
	}
}

// TestNetworkSweepSurvivesWorkerKill hard-kills one of three serve
// workers mid-sweep; the coordinator must reassign its shards to the
// survivors and still merge bit-for-bit with the unsharded run.
func TestNetworkSweepSurvivesWorkerKill(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs child binaries")
	}
	bin := buildSweepd(t)
	var addrs []string
	var victims []*exec.Cmd
	for i := 0; i < 3; i++ {
		addr, cmd := startServeWorker(t, bin)
		addrs = append(addrs, addr)
		victims = append(victims, cmd)
	}
	pool, err := shard.NewRemotePool(addrs, shard.RemoteOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	spec := shard.SweepSpec{
		Sweep: shard.SweepLambdaSynthetic, Grid: []float64{1, 5},
		Trials: 600, Seed: 42, Outcomes: 2,
	}
	var kill sync.Once
	var killed atomic.Bool
	opts := shard.Options{
		Parallel: 3, Retries: 4,
		OnShardDone: func(done, total int, res shard.ShardResult) {
			kill.Do(func() {
				victims[0].Process.Kill()
				killed.Store(true)
			})
		},
	}
	merged, err := shard.Coordinate(spec, 9, pool.Runner(), opts)
	if err != nil {
		t.Fatalf("coordinator did not survive the worker kill: %v", err)
	}
	if !killed.Load() {
		t.Fatal("kill hook never fired")
	}
	want, err := shard.Coordinate(spec, 1, shard.LocalRunner(shard.Builtin()), shard.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(encodedOrDie(t, merged), encodedOrDie(t, want)) {
		t.Fatal("post-kill merge differs from unsharded run")
	}
}

// TestWorkerPanicSurfacesStack: a worker process that panics mid-shard
// must come back from ExecRunner as an error carrying the panic message
// and goroutine stack — the coordinator's retry log has to say why.
func TestWorkerPanicSurfacesStack(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs child binaries")
	}
	bin := buildSweepd(t)
	t.Setenv("SWEEPD_FAULT", "worker-panic")
	spec := shard.SweepSpec{
		Sweep: shard.SweepLambdaSynthetic, Grid: []float64{1}, Trials: 100, Seed: 1, Outcomes: 2,
	}
	_, err := shard.ExecRunner(bin, "-worker")(spec.Shard(0, 100))
	if err == nil {
		t.Fatal("panicking worker reported success")
	}
	for _, needle := range []string{"panic", "injected worker fault", "goroutine"} {
		if !strings.Contains(err.Error(), needle) {
			t.Fatalf("worker panic error lacks %q:\n%v", needle, err)
		}
	}
}

// TestJournalResumeCLI drives the kill -9 walkthrough through the real
// binary: a journaled coordinator run is crashed deterministically after
// 2 shards (SWEEPD_FAULT=die-after=2), rerun with the identical command,
// and its output table must match the uninterrupted 1-shard run.
func TestJournalResumeCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs child binaries")
	}
	bin := buildSweepd(t)
	journal := filepath.Join(t.TempDir(), "sweep.journal")
	args := []string{"-sweep", "lambda/synthetic", "-params", "1,5", "-trials", "400",
		"-seed", "7", "-shards", "4", "-journal", journal}

	crash := exec.Command(bin, args...)
	crash.Env = append(os.Environ(), "SWEEPD_FAULT=die-after=2")
	if out, err := crash.CombinedOutput(); err == nil {
		t.Fatalf("fault-injected run exited 0:\n%s", out)
	}
	if _, err := os.Stat(journal); err != nil {
		t.Fatalf("crashed run left no journal: %v", err)
	}

	start := time.Now()
	resumed, err := exec.Command(bin, args...).Output()
	if err != nil {
		t.Fatalf("resume run failed: %v", err)
	}
	t.Logf("resume took %v", time.Since(start).Round(time.Millisecond))

	reference, err := exec.Command(bin, "-sweep", "lambda/synthetic", "-params", "1,5",
		"-trials", "400", "-seed", "7", "-shards", "1").Output()
	if err != nil {
		t.Fatalf("reference run failed: %v", err)
	}
	table := func(out []byte) string {
		lines := strings.Split(string(out), "\n")
		if len(lines) < 4 {
			t.Fatalf("short output:\n%s", out)
		}
		return strings.Join(lines[:4], "\n")
	}
	if table(resumed) != table(reference) {
		t.Fatalf("resumed table differs from uninterrupted run:\n%s\nvs\n%s", table(resumed), table(reference))
	}
}

func TestWorkerProtocolRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs a child binary")
	}
	bin := buildSweepd(t)
	spec := shard.SweepSpec{
		Sweep: shard.SweepLambdaSynthetic, Grid: []float64{1, 5}, Trials: 200, Seed: 42, Outcomes: 2,
	}
	viaProcess, err := shard.ExecRunner(bin, "-worker")(spec.Shard(50, 150))
	if err != nil {
		t.Fatal(err)
	}
	inProcess, err := shard.Run(spec.Shard(50, 150), shard.Builtin())
	if err != nil {
		t.Fatal(err)
	}
	wire1, err := viaProcess.Encode()
	if err != nil {
		t.Fatal(err)
	}
	wire2, err := inProcess.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if string(wire1) != string(wire2) {
		t.Fatalf("worker process result differs from in-process run:\n%s\nvs\n%s", wire1, wire2)
	}
}

// TestFourProcessNaturalLambdaMatchesCharacterize is the chi-square
// end-to-end check: the natural lambda model's outcome tally, sharded
// across 4 worker processes (each a fresh exec of the sweepd worker mode)
// and merged, must be *identical* to the single-process Characterize
// result — bit-for-bit equal counts, hence a χ² homogeneity statistic of
// exactly zero.
func TestFourProcessNaturalLambdaMatchesCharacterize(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs child binaries")
	}
	const (
		moi    = int64(3)
		trials = 4000
		seed   = uint64(2007)
	)
	bin := buildSweepd(t)
	spec := shard.SweepSpec{
		Sweep: shard.SweepLambdaNatural, Grid: []float64{float64(moi)},
		Trials: trials, Seed: seed, Outcomes: 2,
	}
	merged, err := shard.Coordinate(spec, 4, shard.ExecRunner(bin, "-worker"), shard.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := merged.ResultAt(0)
	if err != nil {
		t.Fatal(err)
	}

	natural, err := lambda.NaturalModel(lambda.NaturalParams{})
	if err != nil {
		t.Fatal(err)
	}
	single := natural.Characterize(moi, trials, mc.PointSeed(seed, 0))

	if sharded.Trials != single.Trials || sharded.None != single.None {
		t.Fatalf("sharded trials/none %d/%d, single-process %d/%d",
			sharded.Trials, sharded.None, single.Trials, single.None)
	}
	for o, c := range single.Counts {
		if sharded.Counts[o] != c {
			t.Fatalf("outcome %d: sharded %d, single-process %d", o, sharded.Counts[o], c)
		}
	}

	// The merged distribution is the single-process distribution, so the
	// χ² homogeneity statistic against it is exactly zero.
	classified := single.Counts[lambda.Lysis] + single.Counts[lambda.Lysogeny]
	probs := []float64{
		float64(single.Counts[lambda.Lysis]) / float64(classified),
		float64(single.Counts[lambda.Lysogeny]) / float64(classified),
	}
	stat, err := mc.ChiSquare(sharded.Counts, probs)
	if err != nil {
		t.Fatal(err)
	}
	if stat != 0 {
		t.Fatalf("χ² between merged and single-process tallies = %v, want exactly 0", stat)
	}
}

// TestFigure3ScaleSweepMatchesMcSweep pins the headline guarantee at the
// paper's measurement scale: a Figure 3 error-rate sweep, sharded across
// 4 worker processes via cmd/sweepd, merges to tallies bit-for-bit
// identical to a plain single-process mc.Sweep over the same γ grid
// (fresh-engine trials, no sharding machinery on the reference side).
func TestFigure3ScaleSweepMatchesMcSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs child binaries; runs a large sweep")
	}
	gammas := []float64{1, 10, 100}
	trials := 100000 // the paper's "100,000 trials" scale
	const seed = uint64(7)

	bin := buildSweepd(t)
	spec := shard.SweepSpec{
		Sweep: shard.SweepFig3Error, Grid: gammas, Trials: trials, Seed: seed, Outcomes: 2,
	}
	merged, err := shard.Coordinate(spec, 4, shard.ExecRunner(bin, "-worker"), shard.Options{Retries: 1})
	if err != nil {
		t.Fatal(err)
	}
	got, err := merged.SweepPoints()
	if err != nil {
		t.Fatal(err)
	}

	want := mc.Sweep(mc.Config{Trials: trials, Outcomes: 2, Seed: seed}, gammas,
		func(gamma float64) mc.Trial {
			mod, err := synth.Figure3Spec(gamma).Build()
			if err != nil {
				t.Fatal(err)
			}
			classify := synth.Figure3Classifier(mod)
			return func(gen *rng.PCG) int {
				return classify(sim.NewOptimizedDirect(mod.Net, gen))
			}
		})

	for i := range want {
		w, g := want[i].Result, got[i].Result
		if w.Trials != g.Trials || w.None != g.None {
			t.Fatalf("γ=%v: trials/none %d/%d, want %d/%d", gammas[i], g.Trials, g.None, w.Trials, w.None)
		}
		for o := range w.Counts {
			if w.Counts[o] != g.Counts[o] {
				t.Fatalf("γ=%v outcome %d: sharded %d, mc.Sweep %d", gammas[i], o, g.Counts[o], w.Counts[o])
			}
		}
	}
}

// TestUnknownSweepFailsFastListingBuiltins: coordinator mode with an
// unknown or missing -sweep must fail before partitioning or dispatching
// anything, and the error must list every registered sweep id so the user
// can correct the command without running -list separately.
func TestUnknownSweepFailsFastListingBuiltins(t *testing.T) {
	bin := buildSweepd(t)
	names := shard.Builtin().Names()
	for _, args := range [][]string{
		{"-sweep", "bogus/sweep", "-params", "1,2", "-trials", "10"},
		{"-params", "1,2", "-trials", "10"}, // missing -sweep entirely
	} {
		var stdout, stderr bytes.Buffer
		cmd := exec.Command(bin, args...)
		cmd.Stdout = &stdout
		cmd.Stderr = &stderr
		err := cmd.Run()
		exitErr, ok := err.(*exec.ExitError)
		if !ok || exitErr.ExitCode() != 1 {
			t.Fatalf("%v: want exit code 1, got %v", args, err)
		}
		for _, name := range names {
			if !strings.Contains(stderr.String(), name) {
				t.Errorf("%v: stderr %q does not list sweep %q", args, stderr.String(), name)
			}
		}
		if strings.Contains(stdout.String(), "shards") {
			t.Errorf("%v: sweep appears to have run before the failure:\n%s", args, stdout.String())
		}
	}
}
