// Command crnsim simulates a chemical reaction network described in the
// .crn text format.
//
// Usage:
//
//	crnsim [flags] network.crn
//
// Modes:
//
//	-trace            print one stochastic trajectory as CSV (default)
//	-trials N         Monte Carlo: run N trials and report final-state stats
//	-mean             with -trials: ensemble mean±stderr time-course as CSV
//	                  (grid of 20 points up to -maxtime, which is required)
//	-species a,b,c    restrict reporting to these species
//	-engine E         direct | optimized | first | next (default direct)
//	-maxtime T        stop a trajectory at simulated time T
//	-maxsteps N       stop a trajectory after N events (default 1e6)
//	-seed S           RNG seed (default 1)
//	-validate         validate the network and exit
//	-dot              print a Graphviz rendering and exit
//
// Examples:
//
//	crnsim -validate model.crn
//	crnsim -trace -maxtime 100 model.crn > trajectory.csv
//	crnsim -trials 10000 -species cro2,ci2 model.crn
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"stochsynth/internal/chem"
	"stochsynth/internal/mc"
	"stochsynth/internal/rng"
	"stochsynth/internal/sim"
)

func main() {
	var (
		trials   = flag.Int("trials", 0, "Monte Carlo trial count (0 = single trace)")
		species  = flag.String("species", "", "comma-separated species to report (default all)")
		engine   = flag.String("engine", "direct", "simulation engine: direct|optimized|first|next")
		maxTime  = flag.Float64("maxtime", 0, "simulated-time bound (0 = none)")
		maxSteps = flag.Int64("maxsteps", 1_000_000, "event-count bound")
		seed     = flag.Uint64("seed", 1, "RNG seed")
		mean     = flag.Bool("mean", false, "with -trials: ensemble mean time-course (requires -maxtime)")
		validate = flag.Bool("validate", false, "validate the network and exit")
		dot      = flag.Bool("dot", false, "print Graphviz and exit")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: crnsim [flags] network.crn")
		flag.PrintDefaults()
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	net, err := chem.ParseNetwork(f)
	f.Close()
	if err != nil {
		fatal(err)
	}

	switch {
	case *validate:
		issues := chem.Validate(net)
		for _, is := range issues {
			fmt.Println(is)
		}
		if len(chem.Errors(issues)) > 0 {
			os.Exit(1)
		}
		fmt.Printf("ok: %d species, %d reactions\n", net.NumSpecies(), net.NumReactions())
		return
	case *dot:
		fmt.Print(chem.Graphviz(net))
		return
	}

	report, err := selectSpecies(net, *species)
	if err != nil {
		fatal(err)
	}
	mk, err := engineFactory(*engine)
	if err != nil {
		fatal(err)
	}
	opts := sim.RunOptions{MaxTime: *maxTime, MaxSteps: *maxSteps}

	if *trials <= 0 {
		eng := mk(net, rng.New(*seed))
		var tr sim.Trajectory
		opts.OnEvent = tr.RecordAll(eng)
		res := sim.Run(eng, opts)
		fmt.Print(projectCSV(&tr, net, report))
		fmt.Fprintf(os.Stderr, "stopped: %s after %d events at t=%g\n", res.Reason, res.Steps, res.Time)
		return
	}

	if *mean {
		if *maxTime <= 0 {
			fatal(fmt.Errorf("-mean requires a positive -maxtime"))
		}
		const points = 20
		grid := make([]float64, points)
		for i := range grid {
			grid[i] = *maxTime * float64(i+1) / points
		}
		ens := sim.EnsembleStats(net, grid, *trials, *seed)
		fmt.Print(ensembleCSV(ens, net, report))
		return
	}

	st0 := net.InitialState()
	for _, sp := range report {
		sp := sp
		s := mc.RunNumericWith(mc.Config{Trials: *trials, Seed: *seed},
			func(gen *rng.PCG) sim.Engine { return mk(net, gen) },
			func(eng sim.Engine) float64 {
				eng.Reset(st0, 0)
				sim.Run(eng, opts)
				return float64(eng.State()[sp])
			})
		fmt.Printf("%-12s mean=%.4f stderr=%.4f min=%g max=%g (n=%d)\n",
			net.Name(sp), s.Mean, s.StdErr(), s.Min, s.Max, s.N)
	}
}

func engineFactory(name string) (func(*chem.Network, *rng.PCG) sim.Engine, error) {
	switch name {
	case "direct":
		return func(n *chem.Network, g *rng.PCG) sim.Engine { return sim.NewDirect(n, g) }, nil
	case "optimized":
		return func(n *chem.Network, g *rng.PCG) sim.Engine { return sim.NewOptimizedDirect(n, g) }, nil
	case "first":
		return func(n *chem.Network, g *rng.PCG) sim.Engine { return sim.NewFirstReaction(n, g) }, nil
	case "next":
		return func(n *chem.Network, g *rng.PCG) sim.Engine { return sim.NewNextReaction(n, g) }, nil
	default:
		return nil, fmt.Errorf("unknown engine %q (want direct|optimized|first|next)", name)
	}
}

func selectSpecies(net *chem.Network, list string) ([]chem.Species, error) {
	if list == "" {
		all := make([]chem.Species, net.NumSpecies())
		for i := range all {
			all[i] = chem.Species(i)
		}
		return all, nil
	}
	var out []chem.Species
	for _, name := range strings.Split(list, ",") {
		name = strings.TrimSpace(name)
		sp, ok := net.SpeciesByName(name)
		if !ok {
			return nil, fmt.Errorf("unknown species %q", name)
		}
		out = append(out, sp)
	}
	return out, nil
}

func projectCSV(tr *sim.Trajectory, net *chem.Network, report []chem.Species) string {
	var b strings.Builder
	b.WriteString("t")
	for _, sp := range report {
		b.WriteByte(',')
		b.WriteString(net.Name(sp))
	}
	b.WriteByte('\n')
	for i, t := range tr.Times {
		fmt.Fprintf(&b, "%g", t)
		for _, sp := range report {
			fmt.Fprintf(&b, ",%d", tr.States[i][sp])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func ensembleCSV(ens *sim.Ensemble, net *chem.Network, report []chem.Species) string {
	var b strings.Builder
	b.WriteString("t")
	for _, sp := range report {
		fmt.Fprintf(&b, ",%s,%s_stderr", net.Name(sp), net.Name(sp))
	}
	b.WriteByte('\n')
	for k, t := range ens.Times {
		fmt.Fprintf(&b, "%g", t)
		for _, sp := range report {
			fmt.Fprintf(&b, ",%g,%g", ens.Mean[k][sp], ens.StdErr(k, sp))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "crnsim:", err)
	os.Exit(1)
}
