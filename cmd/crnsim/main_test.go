package main

import (
	"strings"
	"testing"

	"stochsynth/internal/chem"
	"stochsynth/internal/rng"
	"stochsynth/internal/sim"
)

func TestEngineFactory(t *testing.T) {
	net := chem.MustParseNetwork(`
a = 3
a -> b @ 1
`)
	for _, name := range []string{"direct", "optimized", "first", "next"} {
		mk, err := engineFactory(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		eng := mk(net, rng.New(1))
		if res := sim.Run(eng, sim.RunOptions{}); res.Steps != 3 {
			t.Fatalf("%s ran %d steps", name, res.Steps)
		}
	}
	if _, err := engineFactory("warp"); err == nil {
		t.Fatal("unknown engine accepted")
	}
}

func TestSelectSpecies(t *testing.T) {
	net := chem.MustParseNetwork(`a -> b @ 1`)
	all, err := selectSpecies(net, "")
	if err != nil || len(all) != 2 {
		t.Fatalf("all species: %v %v", all, err)
	}
	some, err := selectSpecies(net, " b ")
	if err != nil || len(some) != 1 || net.Name(some[0]) != "b" {
		t.Fatalf("single species: %v %v", some, err)
	}
	if _, err := selectSpecies(net, "ghost"); err == nil {
		t.Fatal("unknown species accepted")
	}
}

func TestProjectCSV(t *testing.T) {
	net := chem.MustParseNetwork(`a -> b @ 1`)
	var tr sim.Trajectory
	tr.Append(0, chem.State{1, 0})
	tr.Append(0.5, chem.State{0, 1})
	b := net.MustSpecies("b")
	out := projectCSV(&tr, net, []chem.Species{b})
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if lines[0] != "t,b" || lines[2] != "0.5,1" {
		t.Fatalf("csv:\n%s", out)
	}
}
