// Command experiments regenerates every figure and worked example of the
// paper's evaluation, printing the same series the paper plots plus ASCII
// renderings of the figures.
//
// Usage:
//
//	experiments -exp fig3|fig4|fig5|ex1|ex2|modules|all [flags]
//
// Flags:
//
//	-trials N   Monte Carlo trials per point (default 20000; paper: 100000)
//	-seed S     base RNG seed (default 2007)
//	-shards K   shards for the Figure 3 sweep (default 1; tallies are
//	            bit-for-bit identical for every K — see docs/sharding.md)
//	-engine E   simulation engine for the Monte Carlo sweeps (fig3, fig5,
//	            pipeline): direct|optimized|first-reaction|next-reaction|
//	            hybrid; default optimized. See docs/engines.md.
//
// The tool prints measured values next to the paper's reported/derived
// values so deviations are visible at a glance. EXPERIMENTS.md records a
// snapshot of this output.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"time"

	"stochsynth/internal/chem"
	"stochsynth/internal/lambda"
	"stochsynth/internal/mc"
	"stochsynth/internal/plot"
	"stochsynth/internal/rng"
	"stochsynth/internal/shard"
	"stochsynth/internal/sim"
	"stochsynth/internal/synth"
)

func main() {
	var (
		exp    = flag.String("exp", "all", "experiment: fig3|fig4|fig5|ex1|ex2|modules|pipeline|all")
		trials = flag.Int("trials", 20000, "Monte Carlo trials per point (paper: 100000)")
		seed   = flag.Uint64("seed", 2007, "base RNG seed")
		engine = flag.String("engine", "", "simulation engine for the Monte Carlo sweeps (default optimized)")
	)
	flag.IntVar(&fig3Shards, "shards", 1, "shards for the Figure 3 sweep (results identical for any value)")
	flag.Parse()
	// Engine selection fails fast, before any experiment runs: an unknown
	// -engine value lists sim.EngineKinds(), and an engine with no
	// registered Figure 3 sweep is rejected up front instead of silently
	// substituting the default mid-run.
	kind, err := sim.ParseEngineKind(*engine)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(2)
	}
	if err := validateEngineSelection(*exp, kind); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(2)
	}
	engineKind = kind

	run := func(name string, f func(int, uint64)) {
		fmt.Printf("==== %s ====\n", name)
		start := time.Now()
		f(*trials, *seed)
		fmt.Printf("(%s, %d trials/point)\n\n", time.Since(start).Round(time.Millisecond), *trials)
	}

	switch *exp {
	case "fig3":
		run("Figure 3: stochastic-module error vs gamma", figure3)
	case "fig4":
		run("Figure 4: synthetic lambda model", figure4)
	case "fig5":
		run("Figure 5: lambda probabilistic response", figure5)
	case "ex1":
		run("Example 1: programmed 0.3/0.4/0.3 distribution", example1)
	case "ex2":
		run("Example 2: affine input dependence", example2)
	case "modules":
		run("Section 2.2.1: deterministic modules", modules)
	case "pipeline":
		run("Section 3 methodology: characterise -> fit -> synthesise -> validate", pipeline)
	case "all":
		run("Figure 3: stochastic-module error vs gamma", figure3)
		run("Figure 4: synthetic lambda model", figure4)
		run("Figure 5: lambda probabilistic response", figure5)
		run("Example 1: programmed 0.3/0.4/0.3 distribution", example1)
		run("Example 2: affine input dependence", example2)
		run("Section 2.2.1: deterministic modules", modules)
		run("Section 3 methodology: characterise -> fit -> synthesise -> validate", pipeline)
	default:
		fmt.Fprintf(os.Stderr, "experiments: unknown -exp %q\n", *exp)
		os.Exit(2)
	}
}

// fig3Shards is how many shards the Figure 3 sweep is partitioned into
// (flag -shards). The tallies are bit-for-bit identical for every value;
// only the work distribution changes.
var fig3Shards = 1

// engineKind is the -engine flag: the engine the Monte Carlo sweeps run on
// (empty = each path's default, OptimizedDirect).
var engineKind sim.EngineKind

// fig3Sweeps maps the engine kinds that have a registered Figure 3 sweep
// to its id. The Figure 3 experiment runs through the shard registry, so
// only kinds with a builtin sweep can serve it; when a new fig3 builtin
// lands in shard.Builtin(), add its kind here and validation, selection
// and the error message all follow.
var fig3Sweeps = map[sim.EngineKind]string{
	"":                        shard.SweepFig3Error,
	sim.EngineOptimizedDirect: shard.SweepFig3Error,
	sim.EngineHybrid:          shard.SweepFig3ErrorHybrid,
}

// fig3SupportedKinds lists the non-default engine kinds fig3Sweeps maps,
// in EngineKinds order, for error messages.
func fig3SupportedKinds() []sim.EngineKind {
	var kinds []sim.EngineKind
	for _, k := range sim.EngineKinds() {
		if _, ok := fig3Sweeps[k]; ok {
			kinds = append(kinds, k)
		}
	}
	return kinds
}

// validateEngineSelection rejects -exp/-engine combinations that could not
// run as requested, so the tool fails before any experiment output instead
// of surfacing a substitution notice mid-run. An explicit `-exp fig3` with
// an unservable engine is refused; `-exp all` still runs (every other
// experiment honours the engine) and figure3 announces the skip up front.
func validateEngineSelection(exp string, kind sim.EngineKind) error {
	if kind == "" {
		return nil
	}
	if exp == "fig3" {
		if _, ok := fig3Sweeps[kind]; !ok {
			return fmt.Errorf("engine %q has no registered Figure 3 sweep (fig3 supports: %v); choose one of those or a different -exp",
				kind, fig3SupportedKinds())
		}
	}
	return nil
}

// figure3 reproduces the error-vs-γ sweep (Monte Carlo per γ, log-log).
// It runs on the partition+merge core: the default single-process run is
// the 1-shard special case of the same sharded sweep cmd/sweepd can
// spread across worker processes.
func figure3(trials int, seed uint64) {
	gammas := []float64{1, 10, 100, 1e3, 1e4, 1e5}
	sweep, ok := fig3Sweeps[engineKind]
	if !ok {
		// Only reachable from `-exp all` (an explicit `-exp fig3` was
		// refused at startup by validateEngineSelection): skip the sweep
		// loudly rather than substituting the default engine mid-run.
		fmt.Fprintf(os.Stderr, "experiments: skipping Figure 3: engine %q has no registered sweep (fig3 supports: %v)\n",
			engineKind, fig3SupportedKinds())
		return
	}
	spec := shard.SweepSpec{
		Sweep: sweep, Grid: gammas, Trials: trials, Seed: seed, Outcomes: 2,
	}
	merged, err := shard.Coordinate(spec, fig3Shards, shard.LocalRunner(shard.Builtin()),
		shard.Options{Parallel: 1, Retries: 1})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	tab := plot.Table{Headers: []string{"gamma", "trials", "errors", "error %", "95% Wilson"}}
	var xs, ys []float64
	for i, g := range gammas {
		res, err := merged.ResultAt(i)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		rate := res.Fraction(1)
		n := res.Counts[1]
		lo, hi := res.Proportion(1).Wilson(mc.Z95)
		tab.Add(
			fmt.Sprintf("%g", g),
			fmt.Sprintf("%d", trials),
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%.4f", 100*rate),
			fmt.Sprintf("[%.4f, %.4f]", 100*lo, 100*hi),
		)
		if rate > 0 {
			xs = append(xs, g)
			ys = append(ys, 100*rate)
		}
	}
	fmt.Print(tab.Render())
	p := plot.Plot{
		Title:  "Error Analysis for the Stochastic Module (cf. paper Figure 3)",
		XLabel: "Reaction Rate Separation (gamma)",
		YLabel: "Percent of Trajectories in Error",
		XLog:   true, YLog: true,
	}
	p.Add(plot.Series{Name: "measured error", Marker: 'o', X: xs, Y: ys})
	fmt.Print(p.Render())
}

// figure4 prints the synthesised model next to its validation status.
func figure4(int, uint64) {
	m := lambda.SyntheticModel()
	fmt.Printf("%d reactions in %d species (paper: 19 in 17)\n\n", m.Net.NumReactions(), m.Net.NumSpecies())
	fmt.Print(chem.Format(m.Net))
	if issues := chem.Validate(m.Net); len(issues) > 0 {
		fmt.Println("\nvalidation findings:")
		for _, is := range issues {
			fmt.Println(" ", is)
		}
	}
}

// figure5 sweeps MOI for the natural surrogate and the synthetic model,
// fits both, and overlays the three series like the paper's Figure 5.
func figure5(trials int, seed uint64) {
	mois := []int64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	ref := lambda.Reference()

	natural, err := lambda.NaturalModel(lambda.NaturalParams{})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	natural.Engine = engineKind
	natPts := lambda.SweepMOI(natural, mois, trials, seed)
	synPts := lambda.SweepMOI(lambda.SyntheticModel().WithEngine(engineKind), mois, trials, seed+999)

	tab := plot.Table{Headers: []string{"MOI", "natural %", "synthetic %", "programmed %", "Eq.14 %"}}
	var xs, natY, synY, refY []float64
	params := lambda.SynthesisParams{A: 15, B: 6, CInv: 6}
	for i, moi := range mois {
		tab.Add(
			fmt.Sprintf("%d", moi),
			fmt.Sprintf("%.2f", natPts[i].PctLysogeny),
			fmt.Sprintf("%.2f", synPts[i].PctLysogeny),
			fmt.Sprintf("%.0f", lambda.Programmed(params, moi)),
			fmt.Sprintf("%.2f", ref.Eval(float64(moi))),
		)
		xs = append(xs, float64(moi))
		natY = append(natY, natPts[i].PctLysogeny)
		synY = append(synY, synPts[i].PctLysogeny)
		refY = append(refY, ref.Eval(float64(moi)))
	}
	fmt.Print(tab.Render())

	if natFit, err := lambda.FitResponse(natPts); err == nil {
		fmt.Printf("\nnatural fit:   %s\n", natFit)
	}
	if synFit, err := lambda.FitResponse(synPts); err == nil {
		fmt.Printf("synthetic fit: %s\n", synFit)
	}
	fmt.Printf("paper Eq. 14:  15 + 6·log2(x) + 0.1667·x\n\n")

	p := plot.Plot{
		Title:  "Probabilistic Response (cf. paper Figure 5)",
		XLabel: "MOI",
		YLabel: "cI2 Threshold Reached (%)",
	}
	p.Add(plot.Series{Name: "natural surrogate", Marker: 'N', X: xs, Y: natY})
	p.Add(plot.Series{Name: "synthetic system", Marker: 'S', X: xs, Y: synY})
	p.Add(plot.Series{Name: "Eq.14 fit", Marker: '.', X: xs, Y: refY})
	fmt.Print(p.Render())
}

// example1 reproduces the 0.3/0.4/0.3 programmed distribution.
func example1(trials int, seed uint64) {
	mod, err := synth.StochasticSpec{
		Outcomes: []synth.Outcome{{Weight: 30}, {Weight: 40}, {Weight: 30}},
		Gamma:    1e3,
	}.Build()
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	res := mc.RunWith(mc.Config{Trials: trials, Outcomes: 3, Seed: seed},
		func(gen *rng.PCG) sim.Engine { return sim.NewOptimizedDirect(mod.Net, gen) },
		func(eng sim.Engine) int {
			return synth.RunRaceWith(mod, eng, 10, 2_000_000).Winner
		})
	tab := plot.Table{Headers: []string{"outcome", "programmed", "measured", "95% Wilson"}}
	for i, want := range mod.Probabilities() {
		p := res.Proportion(i)
		lo, hi := p.Wilson(mc.Z95)
		tab.Add(
			fmt.Sprintf("d%d", i+1),
			fmt.Sprintf("%.3f", want),
			fmt.Sprintf("%.4f", p.Estimate()),
			fmt.Sprintf("[%.4f, %.4f]", lo, hi),
		)
	}
	fmt.Print(tab.Render())
	if res.None > 0 {
		fmt.Printf("unresolved trials: %d\n", res.None)
	}
}

// example2 reproduces the affine preprocessing across a grid of inputs.
func example2(trials int, seed uint64) {
	am, err := synth.AffineSpec{
		Stochastic: synth.StochasticSpec{
			Outcomes: []synth.Outcome{{Weight: 30}, {Weight: 40}, {Weight: 30}},
			Gamma:    1e3,
		},
		Inputs: []string{"x1", "x2"},
		Coeff:  [][]float64{{0.02, -0.03}, {0, 0.03}, {-0.02, 0}},
	}.Build()
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("preprocessing reactions:")
	for i := range am.Net.Reactions() {
		r := am.Net.Reaction(i)
		if r.Label == synth.LabelPreprocess {
			fmt.Println(" ", chem.FormatReaction(am.Net, r))
		}
	}
	fmt.Println()
	tab := plot.Table{Headers: []string{"X1", "X2", "p1 prog/meas", "p2 prog/meas", "p3 prog/meas"}}
	for _, inputs := range [][]int64{{0, 0}, {5, 0}, {0, 5}, {5, 5}, {10, 10}} {
		want, err := am.ProbabilitiesAt(inputs)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		st0, err := am.InitialState(inputs)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		res := mc.RunWith(mc.Config{Trials: trials, Outcomes: 3, Seed: seed + uint64(inputs[0]*31+inputs[1])},
			func(gen *rng.PCG) sim.Engine { return sim.NewOptimizedDirect(am.Net, gen) },
			func(eng sim.Engine) int {
				eng.Reset(st0, 0)
				r := sim.Run(eng, sim.RunOptions{
					StopWhen: am.ThresholdPredicate(10), MaxSteps: 2_000_000,
				})
				if r.Reason != sim.StopPredicate {
					return mc.None
				}
				return am.Winner(eng.State(), 10)
			})
		cell := func(i int) string {
			return fmt.Sprintf("%.3f/%.4f", want[i], res.Fraction(i))
		}
		tab.Add(fmt.Sprintf("%d", inputs[0]), fmt.Sprintf("%d", inputs[1]), cell(0), cell(1), cell(2))
	}
	fmt.Print(tab.Render())
}

// modules verifies each deterministic module's function over a small sweep.
func modules(trials int, seed uint64) {
	if trials > 500 {
		trials = 500 // module checks need far fewer trials per input
	}
	tab := plot.Table{Headers: []string{"module", "input", "ideal", "mode", "mean", "P(exact)"}}

	// Linear: 2x → 3y.
	{
		net, _ := synth.LinearSpec{Alpha: 2, Beta: 3, X: "x", Y: "y"}.Build()
		for _, x0 := range []int64{10, 100} {
			net.SetInitialByName("x", x0)
			h := moduleHist(net, net.MustSpecies("y"), nil, trials, seed)
			ideal := 3 * (x0 / 2)
			tab.Add("linear 2x->3y", fmt.Sprint(x0), fmt.Sprint(ideal), fmt.Sprint(h.Mode()),
				fmt.Sprintf("%.2f", h.Mean()), fmt.Sprintf("%.2f", h.FractionAt(ideal)))
		}
	}
	// Exp2.
	{
		for _, x0 := range []int64{2, 4, 6} {
			net, _ := synth.Exp2Spec{X: "x", Y: "y"}.Build()
			net.SetInitialByName("x", x0)
			h := moduleHist(net, net.MustSpecies("y"), nil, trials, seed)
			ideal := int64(1) << uint(x0)
			tab.Add("exp2", fmt.Sprint(x0), fmt.Sprint(ideal), fmt.Sprint(h.Mode()),
				fmt.Sprintf("%.2f", h.Mean()), fmt.Sprintf("%.2f", h.FractionAt(ideal)))
		}
	}
	// Log2.
	{
		for _, x0 := range []int64{8, 32, 100} {
			spec := synth.Log2Spec{X: "x", Y: "y"}
			net, _ := spec.Build()
			net.SetInitialByName("x", x0)
			h := moduleHist(net, net.MustSpecies("y"), spec.DonePredicate(net), trials, seed)
			ideal := int64(math.Ceil(math.Log2(float64(x0))))
			tab.Add("log2", fmt.Sprint(x0), fmt.Sprint(ideal), fmt.Sprint(h.Mode()),
				fmt.Sprintf("%.2f", h.Mean()), fmt.Sprintf("%.2f", h.FractionAt(ideal)))
		}
	}
	// Power.
	{
		for _, c := range []struct{ x, p, want int64 }{{2, 2, 4}, {3, 2, 9}, {2, 3, 8}} {
			net, _ := synth.PowerSpec{X: "x", P: "p", Y: "y"}.Build()
			net.SetInitialByName("x", c.x)
			net.SetInitialByName("p", c.p)
			h := moduleHist(net, net.MustSpecies("y"), nil, trials/4+1, seed)
			tab.Add(fmt.Sprintf("power %d^%d", c.x, c.p), fmt.Sprintf("%d,%d", c.x, c.p),
				fmt.Sprint(c.want), fmt.Sprint(h.Mode()),
				fmt.Sprintf("%.2f", h.Mean()), fmt.Sprintf("%.2f", h.FractionAt(c.want)))
		}
	}
	// Isolation.
	{
		for _, y0 := range []int64{5, 50} {
			net, _ := synth.IsolationSpec{Y: "y", C: "c"}.Build()
			net.SetInitialByName("y", y0)
			net.SetInitialByName("c", 3)
			h := moduleHist(net, net.MustSpecies("y"), nil, trials, seed)
			tab.Add("isolation", fmt.Sprint(y0), "1", fmt.Sprint(h.Mode()),
				fmt.Sprintf("%.2f", h.Mean()), fmt.Sprintf("%.2f", h.FractionAt(1)))
		}
	}
	fmt.Print(tab.Render())
}

// pipeline runs the paper's complete methodology: characterise the natural
// system, fit, quantise, synthesise, and validate the synthetic system
// against the natural response.
func pipeline(trials int, seed uint64) {
	if trials > 5000 {
		trials = 5000
	}
	mois := []int64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	natural, err := lambda.NaturalModel(lambda.NaturalParams{})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	natural.Engine = engineKind
	natPts := lambda.SweepMOI(natural, mois, trials, seed)
	fitted, err := lambda.FitResponse(natPts)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("1. natural response fit:   %s\n", fitted)
	params, err := lambda.RoundToParams(fitted)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("2. quantised parameters:   A=%d B=%d CInv=%d  (P%% = %d + %d·log2 + MOI/%d)\n",
		params.A, params.B, params.CInv, params.A, params.B, params.CInv)
	model, err := lambda.Synthesize(params)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("3. synthesised model:      %d reactions in %d species\n",
		model.Net.NumReactions(), model.Net.NumSpecies())
	model.Engine = engineKind
	synPts := lambda.SweepMOI(model, mois, trials, seed+77)
	var rms float64
	tab := plot.Table{Headers: []string{"MOI", "natural %", "synthetic %"}}
	for i, moi := range mois {
		d := synPts[i].PctLysogeny - natPts[i].PctLysogeny
		rms += d * d
		tab.Add(fmt.Sprintf("%d", moi),
			fmt.Sprintf("%.2f", natPts[i].PctLysogeny),
			fmt.Sprintf("%.2f", synPts[i].PctLysogeny))
	}
	rms = math.Sqrt(rms / float64(len(mois)))
	fmt.Print(tab.Render())
	fmt.Printf("4. validation: RMS deviation %.2f percentage points\n", rms)
}

func moduleHist(net *chem.Network, out chem.Species, done func(chem.State, float64) bool, trials int, seed uint64) *mc.Hist {
	h := mc.NewHist()
	// Sequential engine reuse: one engine, reseeded onto stream (seed, i)
	// per trial — same trajectories as a fresh engine per trial.
	gen := rng.NewStream(seed, 0)
	eng := sim.NewDirect(net, gen)
	st0 := net.InitialState()
	for i := 0; i < trials; i++ {
		gen.Reseed(seed, uint64(i))
		eng.Reset(st0, 0)
		sim.Run(eng, sim.RunOptions{StopWhen: done, MaxSteps: 2_000_000})
		h.Add(eng.State()[out])
	}
	return h
}
