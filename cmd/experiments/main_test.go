package main

import (
	"bytes"
	"errors"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"stochsynth/internal/sim"
)

// Smoke tests: every experiment function must run to completion on tiny
// trial counts (output goes to stdout; correctness of the underlying
// numbers is covered by the library tests).

func TestFigure3Smoke(t *testing.T)  { figure3(60, 1) }
func TestFigure4Smoke(t *testing.T)  { figure4(0, 0) }
func TestExample1Smoke(t *testing.T) { example1(60, 1) }
func TestExample2Smoke(t *testing.T) { example2(60, 1) }
func TestModulesSmoke(t *testing.T)  { modules(20, 1) }

func TestFigure5Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("fig5 smoke is ~seconds")
	}
	figure5(40, 1)
}

func TestPipelineSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline smoke is ~seconds")
	}
	pipeline(60, 1)
}

// TestEngineSelectionFailsFast: a bad -engine must be rejected before any
// experiment runs — unknown values list every selectable kind, and kinds
// without a registered Figure 3 sweep are refused for fig3 runs instead of
// silently substituting the default mid-run.
func TestEngineSelectionFailsFast(t *testing.T) {
	bin := filepath.Join(t.TempDir(), "experiments")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("building experiments: %v\n%s", err, out)
	}
	cases := []struct {
		args []string
		want []string
	}{
		{[]string{"-engine", "bogus"},
			[]string{"unknown engine", "direct", "optimized", "first-reaction", "next-reaction", "hybrid"}},
		{[]string{"-exp", "fig3", "-engine", "direct"},
			[]string{"no registered Figure 3 sweep", "optimized", "hybrid"}},
		{[]string{"-exp", "fig3", "-engine", "next-reaction"},
			[]string{"no registered Figure 3 sweep"}},
	}
	for _, tc := range cases {
		var stdout, stderr bytes.Buffer
		cmd := exec.Command(bin, tc.args...)
		cmd.Stdout = &stdout
		cmd.Stderr = &stderr
		err := cmd.Run()
		var exitErr *exec.ExitError
		if !errors.As(err, &exitErr) || exitErr.ExitCode() != 2 {
			t.Fatalf("%v: want exit code 2, got %v", tc.args, err)
		}
		for _, want := range tc.want {
			if !strings.Contains(stderr.String(), want) {
				t.Errorf("%v: stderr %q does not mention %q", tc.args, stderr.String(), want)
			}
		}
		if stdout.Len() != 0 {
			t.Errorf("%v: experiment output produced before the failure:\n%s", tc.args, stdout.String())
		}
	}
}

// TestValidateEngineSelection covers the in-process validation matrix,
// including the kinds that must keep working.
func TestValidateEngineSelection(t *testing.T) {
	for _, ok := range []struct {
		exp  string
		kind sim.EngineKind
	}{
		{"fig3", ""}, {"fig3", sim.EngineOptimizedDirect}, {"fig3", sim.EngineHybrid},
		{"all", sim.EngineHybrid}, {"all", sim.EngineDirect},
		{"fig5", sim.EngineDirect}, {"ex1", sim.EngineNextReaction},
	} {
		if err := validateEngineSelection(ok.exp, ok.kind); err != nil {
			t.Errorf("exp %q engine %q: unexpected rejection: %v", ok.exp, ok.kind, err)
		}
	}
	for _, bad := range []struct {
		exp  string
		kind sim.EngineKind
	}{
		{"fig3", sim.EngineDirect}, {"fig3", sim.EngineFirstReaction},
		{"fig3", sim.EngineNextReaction},
	} {
		if err := validateEngineSelection(bad.exp, bad.kind); err == nil {
			t.Errorf("exp %q engine %q: expected rejection", bad.exp, bad.kind)
		}
	}
}
