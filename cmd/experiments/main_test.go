package main

import "testing"

// Smoke tests: every experiment function must run to completion on tiny
// trial counts (output goes to stdout; correctness of the underlying
// numbers is covered by the library tests).

func TestFigure3Smoke(t *testing.T)  { figure3(60, 1) }
func TestFigure4Smoke(t *testing.T)  { figure4(0, 0) }
func TestExample1Smoke(t *testing.T) { example1(60, 1) }
func TestExample2Smoke(t *testing.T) { example2(60, 1) }
func TestModulesSmoke(t *testing.T)  { modules(20, 1) }

func TestFigure5Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("fig5 smoke is ~seconds")
	}
	figure5(40, 1)
}

func TestPipelineSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline smoke is ~seconds")
	}
	pipeline(60, 1)
}
