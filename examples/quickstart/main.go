// Quickstart: program a probability distribution into chemistry.
//
// This is the paper's Example 1: three molecular outcomes d1/d2/d3 produced
// with probabilities 0.3/0.4/0.3, programmed purely by the initial
// quantities of the input types (E = 30/40/30). We synthesise the reaction
// network, print it in the paper's notation, simulate 20 000 independent
// cells, and compare the measured outcome frequencies with the programmed
// ones.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"stochsynth"
)

func main() {
	// 1. Specify the behaviour: three outcomes weighted 30/40/30, with the
	// rate-separation factor γ=1000 controlling how reliably the first
	// initializing firing decides the outcome (Figure 3 of the paper).
	mod, err := stochsynth.StochasticSpec{
		Outcomes: []stochsynth.Outcome{
			{Weight: 30},
			{Weight: 40},
			{Weight: 30},
		},
		Gamma: 1e3,
	}.Build()
	if err != nil {
		log.Fatal(err)
	}

	// 2. Inspect the synthesised chemistry (five reaction categories).
	fmt.Println("Synthesised network:")
	fmt.Println(stochsynth.Format(mod.Net))

	// 3. Characterise it by Monte Carlo: each trial simulates one "cell"
	// until some outcome's working reactions have fired 10 times.
	const trials = 20000
	res := stochsynth.MonteCarlo(
		stochsynth.MCConfig{Trials: trials, Outcomes: 3, Seed: 1},
		func(gen *stochsynth.RNG) int {
			eng := stochsynth.NewDirect(mod.Net, gen)
			r := stochsynth.Simulate(eng, stochsynth.RunOptions{
				StopWhen: mod.ThresholdPredicate(10),
				MaxSteps: 1_000_000,
			})
			_ = r
			return mod.Winner(eng.State(), 10)
		})

	// 4. Compare measured vs programmed.
	fmt.Println("outcome  programmed  measured")
	for i, want := range mod.Probabilities() {
		fmt.Printf("  d%d     %.3f       %.4f\n", i+1, want, res.Fraction(i))
	}
	if res.None > 0 {
		fmt.Printf("unresolved trials: %d/%d\n", res.None, trials)
	}
}
