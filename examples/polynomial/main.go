// Polynomial arithmetic in chemistry: the paper's §2.2.2 extension.
//
// "With the linear and raising-to-a-power modules, our scheme can be used
// to implement arbitrary polynomial functions." This example compiles
//
//	Y = 1 + 2·X + X²
//
// into a reaction network (fan-out + linear drains + a Power module, with
// an annihilation-based subtractor available for negative coefficients),
// then evaluates it for several X by exact stochastic simulation.
//
// Run with: go run ./examples/polynomial
package main

import (
	"fmt"
	"log"

	"stochsynth"
)

func main() {
	coeffs := []int64{1, 2, 1} // 1 + 2x + x²

	spec := stochsynth.PolynomialSpec{Coeffs: coeffs, X: "x", Y: "y"}
	net, err := spec.Build()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Compiled network for Y = 1 + 2X + X²:")
	fmt.Println(stochsynth.Format(net))

	fmt.Println("X   ideal   sampled values (5 independent runs)")
	for _, x := range []int64{0, 1, 2, 3, 4} {
		net.SetInitialByName("x", x)
		fmt.Printf("%d   %4d    ", x, stochsynth.EvalPolynomial(coeffs, x))
		for seed := uint64(0); seed < 5; seed++ {
			eng := stochsynth.NewDirect(net, stochsynth.NewRNG(100*uint64(x)+seed))
			stochsynth.Simulate(eng, stochsynth.RunOptions{MaxSteps: 5_000_000})
			fmt.Printf("%4d", eng.State()[net.MustSpecies("y")])
		}
		fmt.Println()
	}

	// A polynomial with a negative coefficient: X² − X (subtraction via
	// annihilation, clamped at zero).
	neg := []int64{0, -1, 1}
	net2, err := stochsynth.PolynomialSpec{Coeffs: neg, X: "x", Y: "y"}.Build()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nY = X² − X (annihilation subtractor):")
	fmt.Println("X   ideal   sampled")
	for _, x := range []int64{1, 2, 3, 4} {
		net2.SetInitialByName("x", x)
		eng := stochsynth.NewDirect(net2, stochsynth.NewRNG(uint64(7*x)))
		stochsynth.Simulate(eng, stochsynth.RunOptions{MaxSteps: 5_000_000})
		fmt.Printf("%d   %4d    %4d\n",
			x, stochsynth.EvalPolynomial(neg, x), eng.State()[net2.MustSpecies("y")])
	}
}
