// Deterministic modules: the paper's §2.2.1 function library at work.
//
// Each module is a small reaction set computing a function of molecule
// counts: linear (αY = βX), exponentiation (Y = 2^X), logarithm
// (Y = log2 X), raising to a power (Y = X^P) and isolation (Y = 1). This
// example runs each one over a few inputs and prints the computed values —
// chemistry as an arithmetic unit.
//
// Run with: go run ./examples/modules
package main

import (
	"fmt"
	"log"

	"stochsynth"
)

// run simulates net until quiescence (or done returns true) and returns
// the final count of the named output species.
func run(net *stochsynth.Network, out string, done func(stochsynth.State, float64) bool, seed uint64) int64 {
	eng := stochsynth.NewDirect(net, stochsynth.NewRNG(seed))
	stochsynth.Simulate(eng, stochsynth.RunOptions{StopWhen: done, MaxSteps: 2_000_000})
	return eng.State()[net.MustSpecies(out)]
}

func main() {
	// Linear: 2x → 5y computes Y = (5/2)·X exactly.
	lin, err := stochsynth.LinearSpec{Alpha: 2, Beta: 5, X: "x", Y: "y"}.Build()
	if err != nil {
		log.Fatal(err)
	}
	lin.SetInitialByName("x", 60)
	fmt.Printf("linear   2x->5y, X=60:    Y = %d (ideal 150)\n", run(lin, "y", nil, 1))

	// Exponentiation: Y = 2^X.
	for _, x := range []int64{3, 5} {
		exp2, err := stochsynth.Exp2Spec{X: "x", Y: "y"}.Build()
		if err != nil {
			log.Fatal(err)
		}
		exp2.SetInitialByName("x", x)
		fmt.Printf("exp2     X=%d:             Y = %d (ideal %d)\n", x, run(exp2, "y", nil, 2), int64(1)<<uint(x))
	}

	// Logarithm: Y = ceil(log2 X). Needs a completion predicate — its pass
	// clock ticks forever.
	for _, x := range []int64{16, 100} {
		spec := stochsynth.Log2Spec{X: "x", Y: "y"}
		logm, err := spec.Build()
		if err != nil {
			log.Fatal(err)
		}
		logm.SetInitialByName("x", x)
		fmt.Printf("log2     X=%-4d:          Y = %d\n", x, run(logm, "y", spec.DonePredicate(logm), 3))
	}

	// Power: Y = X^P via the paper's double-loop gadget.
	pow, err := stochsynth.PowerSpec{X: "x", P: "p", Y: "y"}.Build()
	if err != nil {
		log.Fatal(err)
	}
	pow.SetInitialByName("x", 3)
	pow.SetInitialByName("p", 2)
	fmt.Printf("power    X=3, P=2:        Y = %d (ideal 9)\n", run(pow, "y", nil, 4))

	// Isolation: collapse any Y to exactly 1 (the precondition of exp2 and
	// power).
	iso, err := stochsynth.IsolationSpec{Y: "y", C: "c"}.Build()
	if err != nil {
		log.Fatal(err)
	}
	iso.SetInitialByName("y", 37)
	iso.SetInitialByName("c", 3)
	fmt.Printf("isolate  Y0=37:           Y = %d (ideal 1)\n", run(iso, "y", nil, 5))

	fmt.Println("\nModules compose by sharing species names (see the lambda example")
	fmt.Println("for fan-out + linear + logarithm + assimilation chained together).")
}
