// Lambda switch: the paper's §3 application study in miniature.
//
// The lambda bacteriophage chooses between lysis and lysogeny with a
// probability that depends on the multiplicity of infection (MOI). The
// paper reduces the natural model to the curve fit
//
//	P(lysogeny)% = 15 + 6·log2(MOI) + MOI/6        (Equation 14)
//
// and synthesises a 19-reaction network (Figure 4) implementing it. This
// example builds both our mechanistic natural-model surrogate and the
// synthetic model, sweeps MOI from 1 to 10, and prints the three series of
// the paper's Figure 5.
//
// Run with: go run ./examples/lambdaswitch [-trials N]
package main

import (
	"flag"
	"fmt"
	"log"

	"stochsynth"
)

func main() {
	trials := flag.Int("trials", 3000, "Monte Carlo trials per MOI point")
	flag.Parse()

	synthetic := stochsynth.LambdaSynthetic()
	natural, err := stochsynth.LambdaNatural(stochsynth.NaturalParams{})
	if err != nil {
		log.Fatal(err)
	}
	ref := stochsynth.LambdaReference()

	fmt.Println("The synthesised lambda model (paper Figure 4):")
	fmt.Println(stochsynth.Format(synthetic.Net))

	mois := []int64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	natPts := stochsynth.LambdaSweepMOI(natural, mois, *trials, 7)
	synPts := stochsynth.LambdaSweepMOI(synthetic, mois, *trials, 8)

	fmt.Println("MOI  natural%  synthetic%  Eq.14%")
	for i, moi := range mois {
		fmt.Printf("%3d   %6.2f     %6.2f    %6.2f\n",
			moi, natPts[i].PctLysogeny, synPts[i].PctLysogeny, ref.Eval(float64(moi)))
	}

	if f, err := stochsynth.LambdaFitResponse(natPts); err == nil {
		fmt.Printf("\nfit to natural surrogate:  %s\n", f)
	}
	if f, err := stochsynth.LambdaFitResponse(synPts); err == nil {
		fmt.Printf("fit to synthetic system:   %s\n", f)
	}
	fmt.Println("paper's Equation 14:       15 + 6·log2(x) + 0.1667·x")
}
