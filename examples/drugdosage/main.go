// Drug dosage: the paper's §1.2 motivating scenario.
//
// Engineered bacteria invade a tumour; on receiving an inducer compound,
// each bacterium independently decides whether to produce a drug. To hit
// the right total dose, only a fraction p of the population must respond —
// and p must be adjustable through the injected quantity of the compound.
//
// We program the affine dose-response
//
//	P(respond) = 0.10 + 0.02·X        (X = molecules of compound, 0..40)
//
// using the paper's Example 2 preprocessing: conversion reactions that turn
// "silent"-outcome input types into "respond"-outcome input types, two
// weight units per compound molecule. Sweeping X shows the programmed
// response curve emerging from pure chemistry.
//
// Run with: go run ./examples/drugdosage
package main

import (
	"fmt"
	"log"

	"stochsynth"
)

func main() {
	// Outcome 0 = respond (produce drug), outcome 1 = stay silent.
	// Weights 10/90 give the 10% baseline; each compound molecule moves
	// 2 weight units from silent to respond: p = 0.10 + 0.02·X.
	am, err := stochsynth.AffineSpec{
		Stochastic: stochsynth.StochasticSpec{
			Outcomes: []stochsynth.Outcome{
				{Name: "R", Weight: 10,
					Outputs: []stochsynth.Output{{Species: "drug", Food: "substrate", FoodQuantity: 50}}},
				{Name: "S", Weight: 90},
			},
			Gamma: 1e3,
		},
		Inputs: []string{"compound"},
		Coeff: [][]float64{
			{+0.02},
			{-0.02},
		},
	}.Build()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Dose-response programmed as chemistry:")
	fmt.Println(stochsynth.Format(am.Net))

	const trials = 10000
	fmt.Println("compound X  programmed P  measured P  (responders per 10k bacteria)")
	for _, x := range []int64{0, 5, 10, 20, 30, 40} {
		want, err := am.ProbabilitiesAt([]int64{x})
		if err != nil {
			log.Fatal(err)
		}
		st0, err := am.InitialState([]int64{x})
		if err != nil {
			log.Fatal(err)
		}
		res := stochsynth.MonteCarlo(
			stochsynth.MCConfig{Trials: trials, Outcomes: 2, Seed: 42 + uint64(x)},
			func(gen *stochsynth.RNG) int {
				eng := stochsynth.NewDirect(am.Net, gen)
				eng.Reset(st0, 0)
				r := stochsynth.Simulate(eng, stochsynth.RunOptions{
					StopWhen: am.ThresholdPredicate(10),
					MaxSteps: 1_000_000,
				})
				if r.Reason.String() != "predicate" {
					return stochsynth.MonteCarloNone
				}
				return am.Winner(eng.State(), 10)
			})
		fmt.Printf("   %3d        %.2f          %.4f      (%d)\n",
			x, want[0], res.Fraction(0), res.Counts[0])
	}
	fmt.Println("\nEach bacterium runs the same chemistry; the population-level dose")
	fmt.Println("emerges from independent stochastic choices — the paper's bet-hedging.")
}
