// Benchmarks regenerating every figure of the paper's evaluation, plus
// engine and design-choice ablations. Each figure bench reports the series
// the paper plots as custom benchmark metrics, so
//
//	go test -bench=. -benchmem
//
// prints the reproduction alongside the timing. cmd/experiments produces
// the full-resolution tables and ASCII plots.
package stochsynth_test

import (
	"fmt"
	"testing"
	"time"

	"stochsynth"
	"stochsynth/internal/chem"
	"stochsynth/internal/lambda"
	"stochsynth/internal/mc"
	"stochsynth/internal/rng"
	"stochsynth/internal/scenario"
	"stochsynth/internal/shard"
	"stochsynth/internal/sim"
	"stochsynth/internal/synth"
)

// benchTrials scales the Monte Carlo sizes: the paper uses 100 000 trials;
// benches default to quick sizes so `go test -bench .` stays snappy.
const benchTrials = 1000

// BenchmarkFigure3GammaSweep regenerates Figure 3 (stochastic-module error
// vs. rate separation γ): each sub-benchmark runs the three-outcome race
// with Eᵢ=100 and reports the percentage of trials in error.
func BenchmarkFigure3GammaSweep(b *testing.B) {
	for _, gamma := range []float64{1, 10, 100, 1e3, 1e4, 1e5} {
		b.Run(fmt.Sprintf("gamma=%g", gamma), func(b *testing.B) {
			var errPct float64
			for i := 0; i < b.N; i++ {
				rate, err := synth.Figure3ErrorRate(gamma, benchTrials, 2007+uint64(i))
				if err != nil {
					b.Fatal(err)
				}
				errPct = 100 * rate
			}
			b.ReportMetric(errPct, "err%")
			b.ReportMetric(0, "allocs/op") // drown the meaningless default
		})
	}
}

// BenchmarkFigure5Synthetic regenerates the "Synthetic System" series of
// Figure 5: P(cI₂ threshold reached) at each MOI for the Figure 4 model.
func BenchmarkFigure5Synthetic(b *testing.B) {
	model := lambda.SyntheticModel()
	for _, moi := range []int64{1, 2, 4, 6, 8, 10} {
		b.Run(fmt.Sprintf("moi=%d", moi), func(b *testing.B) {
			var pct float64
			for i := 0; i < b.N; i++ {
				pts := lambda.SweepMOI(model, []int64{moi}, benchTrials, 5+uint64(i))
				pct = pts[0].PctLysogeny
			}
			b.ReportMetric(pct, "lysogeny%")
		})
	}
}

// BenchmarkFigure5SyntheticHybrid regenerates the Figure 5 synthetic series
// on the hybrid exact/tau-leap engine (sim.Hybrid). Besides the lysogeny
// percentage it reports trials/s and the speedup over a reused
// OptimizedDirect engine measured on the same MOI in the same process —
// the tentpole claim is >= 3x; the relay propagation of the log-module
// clock/decay pair typically lands 20-40x.
func BenchmarkFigure5SyntheticHybrid(b *testing.B) {
	base := lambda.SyntheticModel()
	hybrid := lambda.SyntheticModel().WithEngine(sim.EngineHybrid)
	for _, moi := range []int64{1, 2, 4, 6, 8, 10} {
		b.Run(fmt.Sprintf("moi=%d", moi), func(b *testing.B) {
			// One-shot OptimizedDirect baseline for the speedup metric.
			const refTrials = 200
			start := time.Now()
			base.Characterize(moi, refTrials, 3)
			refPerTrial := time.Since(start).Seconds() / refTrials

			var pct float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				pts := lambda.SweepMOI(hybrid, []int64{moi}, benchTrials, 5+uint64(i))
				pct = pts[0].PctLysogeny
			}
			b.StopTimer()
			perTrial := b.Elapsed().Seconds() / (float64(b.N) * benchTrials)
			b.ReportMetric(pct, "lysogeny%")
			b.ReportMetric(1/perTrial, "trials/s")
			b.ReportMetric(refPerTrial/perTrial, "speedup-vs-optimized")
		})
	}
}

// BenchmarkFigure5Natural regenerates the "Natural System" series of
// Figure 5 using the calibrated mechanistic surrogate.
func BenchmarkFigure5Natural(b *testing.B) {
	model, err := lambda.NaturalModel(lambda.NaturalParams{})
	if err != nil {
		b.Fatal(err)
	}
	for _, moi := range []int64{1, 2, 4, 6, 8, 10} {
		b.Run(fmt.Sprintf("moi=%d", moi), func(b *testing.B) {
			var pct float64
			for i := 0; i < b.N; i++ {
				pts := lambda.SweepMOI(model, []int64{moi}, benchTrials, 7+uint64(i))
				pct = pts[0].PctLysogeny
			}
			b.ReportMetric(pct, "lysogeny%")
		})
	}
}

// BenchmarkExample1 regenerates the paper's Example 1: the 30/40/30
// programmed distribution, reporting the measured p₂ (want 0.40).
func BenchmarkExample1(b *testing.B) {
	mod, err := synth.StochasticSpec{
		Outcomes: []synth.Outcome{{Weight: 30}, {Weight: 40}, {Weight: 30}},
		Gamma:    1e3,
	}.Build()
	if err != nil {
		b.Fatal(err)
	}
	var p2 float64
	for i := 0; i < b.N; i++ {
		res := mc.Run(mc.Config{Trials: benchTrials, Outcomes: 3, Seed: 11 + uint64(i)},
			func(gen *rng.PCG) int {
				r := synth.RunRace(mod, 10, 2_000_000, gen)
				return r.Winner
			})
		p2 = res.Fraction(1)
	}
	b.ReportMetric(p2, "p2")
}

// BenchmarkExample2 regenerates the paper's Example 2 at (X₁,X₂) = (5,4):
// programmed p₁ = 0.3+0.02·5−0.03·4 = 0.28.
func BenchmarkExample2(b *testing.B) {
	am, err := synth.AffineSpec{
		Stochastic: synth.StochasticSpec{
			Outcomes: []synth.Outcome{{Weight: 30}, {Weight: 40}, {Weight: 30}},
			Gamma:    1e3,
		},
		Inputs: []string{"x1", "x2"},
		Coeff:  [][]float64{{0.02, -0.03}, {0, 0.03}, {-0.02, 0}},
	}.Build()
	if err != nil {
		b.Fatal(err)
	}
	st0, err := am.InitialState([]int64{5, 4})
	if err != nil {
		b.Fatal(err)
	}
	var p1 float64
	for i := 0; i < b.N; i++ {
		res := mc.Run(mc.Config{Trials: benchTrials, Outcomes: 3, Seed: 13 + uint64(i)},
			func(gen *rng.PCG) int {
				eng := sim.NewDirect(am.Net, gen)
				eng.Reset(st0, 0)
				r := sim.Run(eng, sim.RunOptions{
					StopWhen: am.ThresholdPredicate(10), MaxSteps: 2_000_000,
				})
				if r.Reason != sim.StopPredicate {
					return mc.None
				}
				return am.Winner(eng.State(), 10)
			})
		p1 = res.Fraction(0)
	}
	b.ReportMetric(p1, "p1")
}

// lambdaEventBench measures raw engine throughput (ns per reaction event)
// on the Figure 4 network at MOI 5 — the Gibson–Bruck comparison the paper
// cites as its simulation substrate.
func lambdaEventBench(b *testing.B, mk func(*chem.Network, *rng.PCG) sim.Engine) {
	model := lambda.SyntheticModel()
	st0 := model.Net.InitialState()
	st0.Set(model.MOI, 5)
	gen := rng.New(1)
	eng := mk(model.Net, gen)
	var events int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Reset(st0, 0)
		res := sim.Run(eng, sim.RunOptions{MaxSteps: 10000})
		events += res.Steps
	}
	b.StopTimer()
	if events > 0 {
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(events), "ns/event")
	}
}

func BenchmarkEngineDirectLambda(b *testing.B) {
	lambdaEventBench(b, func(n *chem.Network, g *rng.PCG) sim.Engine { return sim.NewDirect(n, g) })
}

func BenchmarkEngineOptimizedDirectLambda(b *testing.B) {
	lambdaEventBench(b, func(n *chem.Network, g *rng.PCG) sim.Engine { return sim.NewOptimizedDirect(n, g) })
}

func BenchmarkEngineNextReactionLambda(b *testing.B) {
	lambdaEventBench(b, func(n *chem.Network, g *rng.PCG) sim.Engine { return sim.NewNextReaction(n, g) })
}

func BenchmarkEngineFirstReactionLambda(b *testing.B) {
	lambdaEventBench(b, func(n *chem.Network, g *rng.PCG) sim.Engine { return sim.NewFirstReaction(n, g) })
}

// lambdaTrialsBench measures Monte Carlo throughput in trials/sec for one
// lambda model: the quantity the paper's "100,000 trials" characterisation
// is bottlenecked on. The reuse variant runs the engine-factory path
// (mc.RunWith: one engine per worker, Reset per trial); the fresh variant
// builds an engine per trial like mc.Run.
func lambdaTrialsBench(b *testing.B, model *lambda.Model, reuse bool) {
	const moi = 5
	const trialsPerOp = 200
	var lysogeny int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var res mc.Result
		if reuse {
			res = model.Characterize(moi, trialsPerOp, 23+uint64(i))
		} else {
			res = mc.Run(mc.Config{Trials: trialsPerOp, Outcomes: 2, Seed: 23 + uint64(i)},
				model.Trial(moi))
		}
		lysogeny += res.Counts[lambda.Lysogeny]
	}
	b.StopTimer()
	trials := float64(b.N) * trialsPerOp
	b.ReportMetric(trials/b.Elapsed().Seconds(), "trials/s")
	b.ReportMetric(100*float64(lysogeny)/trials, "lysogeny%")
}

// Narrow network: the paper's 19-reaction Figure 4 synthetic model.
// Fresh = one Direct engine built per trial (the pre-refactor path);
// Reuse = Model.Characterize, the mc.RunWith engine-factory hot path with
// one OptimizedDirect engine per worker.
func BenchmarkTrialsSyntheticDirectFresh(b *testing.B) {
	lambdaTrialsBench(b, lambda.SyntheticModel(), false)
}

func BenchmarkTrialsSyntheticOptimizedReuse(b *testing.B) {
	lambdaTrialsBench(b, lambda.SyntheticModel(), true)
}

// Hybrid engine on the same model and path: the partitioned engine batches
// the clock/decay relay analytically between exact race events.
func BenchmarkTrialsSyntheticHybridReuse(b *testing.B) {
	lambdaTrialsBench(b, lambda.SyntheticModel().WithEngine(sim.EngineHybrid), true)
}

// Hybrid engine event throughput on the raw Step loop (comparable with the
// other BenchmarkEngine*Lambda benches; "events" here counts slow steps
// plus batched fast events).
func BenchmarkEngineHybridLambda(b *testing.B) {
	model := lambda.SyntheticModel()
	st0 := model.Net.InitialState()
	st0.Set(model.MOI, 5)
	gen := rng.New(1)
	eng := sim.NewHybrid(model.Net, []chem.Species{model.Cro2, model.CI2}, gen)
	var events int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Reset(st0, 0)
		res := sim.Run(eng, sim.RunOptions{MaxSteps: 10000, MaxTime: 1e8})
		events += res.Steps + eng.FastEvents()
	}
	b.StopTimer()
	if events > 0 {
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(events), "ns/event")
	}
}

// Wide network: the natural-model surrogate (the stand-in for the Arkin
// 117-reaction model the paper characterises).
func BenchmarkTrialsNaturalDirectFresh(b *testing.B) {
	model, err := lambda.NaturalModel(lambda.NaturalParams{})
	if err != nil {
		b.Fatal(err)
	}
	lambdaTrialsBench(b, model, false)
}

func BenchmarkTrialsNaturalOptimizedReuse(b *testing.B) {
	model, err := lambda.NaturalModel(lambda.NaturalParams{})
	if err != nil {
		b.Fatal(err)
	}
	lambdaTrialsBench(b, model, true)
}

// wideNetwork builds an N-channel cyclic conversion network — the "many
// species and many channels" regime where Gibson–Bruck's dependency graph
// pays off.
func wideNetwork(n int) *chem.Network {
	net := chem.NewNetwork()
	b := chem.WrapBuilder(net)
	for i := 0; i < n; i++ {
		from := fmt.Sprintf("s%d", i)
		to := fmt.Sprintf("s%d", (i+1)%n)
		b.Rxn("").In(from, 1).Out(to, 1).Rate(1)
		net.SetInitialByName(from, 50)
	}
	return net
}

func wideEventBench(b *testing.B, mk func(*chem.Network, *rng.PCG) sim.Engine) {
	net := wideNetwork(256)
	eng := mk(net, rng.New(2))
	st0 := net.InitialState()
	var events int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Reset(st0, 0)
		res := sim.Run(eng, sim.RunOptions{MaxSteps: 20000})
		events += res.Steps
	}
	b.StopTimer()
	if events > 0 {
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(events), "ns/event")
	}
}

func BenchmarkEngineDirectWide256(b *testing.B) {
	wideEventBench(b, func(n *chem.Network, g *rng.PCG) sim.Engine { return sim.NewDirect(n, g) })
}

func BenchmarkEngineOptimizedDirectWide256(b *testing.B) {
	wideEventBench(b, func(n *chem.Network, g *rng.PCG) sim.Engine { return sim.NewOptimizedDirect(n, g) })
}

func BenchmarkEngineNextReactionWide256(b *testing.B) {
	wideEventBench(b, func(n *chem.Network, g *rng.PCG) sim.Engine { return sim.NewNextReaction(n, g) })
}

// BenchmarkAblationNoPurifying quantifies the purifying category's
// contribution. The winner identity turns out to be decided by the
// reinforcing/stabilizing race (error rates barely move without
// purifying); what purifying buys is outcome *purity* — how many stray
// output molecules the losing pathway emits before its catalyst dies. The
// bench reports the mean stray-output count at declaration time, with and
// without the purifying channels, at γ=100 (measured: ≈0.0002 vs ≈0.18).
func BenchmarkAblationNoPurifying(b *testing.B) {
	build := func(purify bool) *synth.StochasticModule {
		mod, err := synth.Figure3Spec(100).Build()
		if err != nil {
			b.Fatal(err)
		}
		if purify {
			return mod
		}
		// Rebuild the network without the purifying channels. Species are
		// re-registered in index order, so term indices stay valid; the
		// initializing reactions keep their indices because they are
		// emitted before the purifying category.
		net := chem.NewNetwork()
		for i := 0; i < mod.Net.NumSpecies(); i++ {
			sp := chem.Species(i)
			net.SetInitialByName(mod.Net.Name(sp), mod.Net.Initial(sp))
		}
		for i := 0; i < mod.Net.NumReactions(); i++ {
			r := mod.Net.Reaction(i)
			if r.Label == synth.LabelPurifying {
				continue
			}
			net.AddReaction(r.Label, r.Reactants, r.Products, r.Rate)
		}
		stripped := *mod
		stripped.Net = net
		return &stripped
	}
	for _, purify := range []bool{true, false} {
		b.Run(fmt.Sprintf("purifying=%v", purify), func(b *testing.B) {
			mod := build(purify)
			var stray float64
			for i := 0; i < b.N; i++ {
				s := mc.RunNumeric(mc.Config{Trials: benchTrials, Seed: 17 + uint64(i)},
					func(gen *rng.PCG) float64 {
						eng := sim.NewDirect(mod.Net, gen)
						res := sim.Run(eng, sim.RunOptions{
							StopWhen: mod.ThresholdPredicate(10), MaxSteps: 2_000_000,
						})
						if res.Reason != sim.StopPredicate {
							return 0
						}
						st := eng.State()
						w := mod.Winner(st, 10)
						var n int64
						for j := range mod.Outputs {
							if j != w {
								n += mod.OutputTotal(st, j)
							}
						}
						return float64(n)
					})
				stray = s.Mean
			}
			b.ReportMetric(stray, "stray-outputs")
		})
	}
}

// BenchmarkAblationBandSeparation quantifies deterministic-module accuracy
// vs. band separation: the exp2 module computing 2⁴ at increasing Sep.
func BenchmarkAblationBandSeparation(b *testing.B) {
	for _, sep := range []float64{10, 100, 1000} {
		b.Run(fmt.Sprintf("sep=%g", sep), func(b *testing.B) {
			net, err := stochsynth.Exp2Spec{
				X: "x", Y: "y",
				Bands: stochsynth.RateBands{Slowest: 1e-3, Sep: sep},
			}.Build()
			if err != nil {
				b.Fatal(err)
			}
			net.SetInitialByName("x", 4)
			y := net.MustSpecies("y")
			var exactPct float64
			for i := 0; i < b.N; i++ {
				exact := 0
				const trials = 200
				for s := 0; s < trials; s++ {
					eng := sim.NewDirect(net, rng.NewStream(uint64(19+i), uint64(s)))
					sim.Run(eng, sim.RunOptions{MaxSteps: 200000})
					if eng.State()[y] == 16 {
						exact++
					}
				}
				exactPct = 100 * float64(exact) / trials
			}
			b.ReportMetric(exactPct, "exact%")
		})
	}
}

// BenchmarkSynthesis measures the compiler itself: building the Figure 4
// network from specs.
func BenchmarkSynthesis(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if lambda.SyntheticModel() == nil {
			b.Fatal("nil model")
		}
	}
}

// distMergeParts builds the shard-merge benchmark fixtures: 64 shard
// distribution summaries of 256 trials each, produced by the same
// collector the sharded sweeps use.
func distMergeParts() []mc.DistSummary {
	const shards, per = 64, 256
	cfg := mc.Config{Seed: 23, Outcomes: 2, Workers: 1}
	hcfg := mc.HistConfig{Lo: -16, Width: 2, Bins: 64}
	parts := make([]mc.DistSummary, shards)
	for s := range parts {
		parts[s] = mc.RunDistRangeWith(cfg, hcfg, s*per, (s+1)*per,
			func(gen *rng.PCG) *rng.PCG { return gen },
			func(gen *rng.PCG) mc.Obs {
				v := gen.Normal(0, 8)
				o := gen.Intn(2)
				return mc.Obs{Value: v, IValue: int64(v), Outcome: o, Steps: int64(gen.Intn(4096))}
			})
	}
	return parts
}

// BenchmarkMergeDistSummaries measures the coordinator-side cost of
// folding 64 shard distribution summaries (256 trials each) into one run
// summary — the merge work behind every -dist sweep, journal replay and
// network gather. The component benches below split the cost out.
func BenchmarkMergeDistSummaries(b *testing.B) {
	parts := distMergeParts()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var merged mc.DistSummary
		for _, p := range parts {
			var err error
			if merged, err = mc.MergeDist(merged, p); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkMergeQuantileSketches isolates the aligned-tree sketch merge —
// the only dist component whose merge does real work (deterministic
// rank-block compaction at every tree level).
func BenchmarkMergeQuantileSketches(b *testing.B) {
	parts := distMergeParts()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var merged mc.Sketch
		for _, p := range parts {
			var err error
			if merged, err = mc.MergeSketches(merged, p.Sketch); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkMergeHistSummaries isolates the fixed-bin histogram merge —
// pure integer column sums.
func BenchmarkMergeHistSummaries(b *testing.B) {
	parts := distMergeParts()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var merged mc.HistSummary
		for _, p := range parts {
			var err error
			if merged, err = mc.MergeHist(merged, p.Hist); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// scenarioTrialBench measures Monte Carlo trial throughput of one pinned
// scenario (internal/scenario) on one engine kind, through exactly the
// factory path sharded sweeps run (shard.NetworkFactory over the
// scenario's wire NetworkSpec): one reused engine, Reset+race per trial.
func scenarioTrialBench(b *testing.B, s *scenario.Scenario, kind sim.EngineKind) {
	ns := s.NetworkSpec()
	ns.Engine = string(kind)
	f, err := shard.NetworkFactory(ns, false, true)
	if err != nil {
		b.Fatal(err)
	}
	trial, err := f.DistF(s.Grid[0])
	if err != nil {
		b.Fatal(err)
	}
	gen := rng.New(9)
	eng := trial.NewEngine(gen)
	const trialsPerOp = 50
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < trialsPerOp; j++ {
			gen.Reseed(s.Seed, uint64(j))
			trial.Observe(eng)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)*trialsPerOp/b.Elapsed().Seconds(), "trials/s")
}

// scenarioEngineBenches registers the per-engine sub-benchmarks of one
// scenario: both direct-method engines always, the hybrid only where the
// scenario's partition characterisation says it can batch anything.
func scenarioEngineBenches(b *testing.B, name string) {
	s, ok := scenario.ByName(name)
	if !ok {
		b.Fatalf("scenario %q not in library", name)
	}
	kinds := []sim.EngineKind{sim.EngineDirect, sim.EngineOptimizedDirect}
	if s.Hybrid {
		kinds = append(kinds, sim.EngineHybrid)
	}
	for _, kind := range kinds {
		b.Run(string(kind), func(b *testing.B) { scenarioTrialBench(b, s, kind) })
	}
}

func BenchmarkScenarioAntithetic(b *testing.B)    { scenarioEngineBenches(b, "antithetic") }
func BenchmarkScenarioPlesa(b *testing.B)         { scenarioEngineBenches(b, "plesa") }
func BenchmarkScenarioRepressilator(b *testing.B) { scenarioEngineBenches(b, "repressilator") }
func BenchmarkScenarioSchlogl(b *testing.B)       { scenarioEngineBenches(b, "schlogl") }
func BenchmarkScenarioToggle(b *testing.B)        { scenarioEngineBenches(b, "toggle") }

// BenchmarkTrialsNaturalBatchReuse is the trial-lockstep batch counterpart
// of BenchmarkTrialsNaturalOptimizedReuse: Model.CharacterizeBatch drives
// K = 32 trials through one fused sim.BatchRace kernel per worker, with
// per-trial results bit-identical to the unbatched path.
func BenchmarkTrialsNaturalBatchReuse(b *testing.B) {
	model, err := lambda.NaturalModel(lambda.NaturalParams{})
	if err != nil {
		b.Fatal(err)
	}
	const moi = 5
	const trialsPerOp = 200
	const batch = 32
	var lysogeny int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := model.CharacterizeBatch(moi, trialsPerOp, 23+uint64(i), batch)
		lysogeny += res.Counts[lambda.Lysogeny]
	}
	b.StopTimer()
	trials := float64(b.N) * trialsPerOp
	b.ReportMetric(trials/b.Elapsed().Seconds(), "trials/s")
	b.ReportMetric(100*float64(lysogeny)/trials, "lysogeny%")
}
