package stochsynth_test

import (
	"math"
	"strings"
	"testing"

	"stochsynth"
)

// TestPublicAPIQuickstart runs the README quick-start end to end through
// the facade only.
func TestPublicAPIQuickstart(t *testing.T) {
	mod, err := stochsynth.StochasticSpec{
		Outcomes: []stochsynth.Outcome{{Weight: 30}, {Weight: 40}, {Weight: 30}},
		Gamma:    1e3,
	}.Build()
	if err != nil {
		t.Fatal(err)
	}
	res := stochsynth.MonteCarlo(
		stochsynth.MCConfig{Trials: 5000, Outcomes: 3, Seed: 1},
		func(gen *stochsynth.RNG) int {
			eng := stochsynth.NewDirect(mod.Net, gen)
			stochsynth.Simulate(eng, stochsynth.RunOptions{
				StopWhen: mod.ThresholdPredicate(10),
				MaxSteps: 1_000_000,
			})
			return mod.Winner(eng.State(), 10)
		})
	want := []float64{0.3, 0.4, 0.3}
	for i, w := range want {
		if math.Abs(res.Fraction(i)-w) > 0.05 {
			t.Errorf("p%d = %v, want ≈%v", i, res.Fraction(i), w)
		}
	}
}

func TestPublicAPINetworkRoundTrip(t *testing.T) {
	net, err := stochsynth.ParseNetworkString(`
e1 = 30
initializing: e1 -> d1 @ 1
`)
	if err != nil {
		t.Fatal(err)
	}
	out := string(stochsynth.MarshalCRN(net))
	net2, err := stochsynth.ParseNetworkString(out)
	if err != nil {
		t.Fatalf("round trip failed: %v\n%s", err, out)
	}
	if net2.NumReactions() != 1 || net2.Initial(net2.MustSpecies("e1")) != 30 {
		t.Fatal("round trip lost data")
	}
	if !strings.Contains(stochsynth.Format(net), "initializing") {
		t.Fatal("Format lost label")
	}
}

func TestPublicAPIEngines(t *testing.T) {
	net := stochsynth.NewBuilder()
	net.Init("a", 10)
	net.Rxn("").In("a", 1).Out("b", 1).Rate(1)
	n := net.Network()
	for _, mk := range []func(*stochsynth.Network, *stochsynth.RNG) stochsynth.Engine{
		stochsynth.NewDirect,
		stochsynth.NewNextReaction,
		stochsynth.NewFirstReaction,
		stochsynth.NewOptimizedDirect,
	} {
		eng := mk(n, stochsynth.NewRNG(7))
		res := stochsynth.Simulate(eng, stochsynth.RunOptions{})
		if res.Steps != 10 {
			t.Fatalf("engine ran %d steps, want 10", res.Steps)
		}
	}
}

func TestPublicAPILambdaPipeline(t *testing.T) {
	model := stochsynth.LambdaSynthetic()
	pts := stochsynth.LambdaSweepMOI(model, []int64{1, 4, 10}, 300, 3)
	if len(pts) != 3 {
		t.Fatal("sweep length")
	}
	fit, err := stochsynth.LambdaFitResponse(pts)
	if err != nil {
		t.Fatal(err)
	}
	ref := stochsynth.LambdaReference()
	if math.Abs(fit.Eval(1)-ref.Eval(1)) > 8 {
		t.Errorf("fit at MOI=1: %v vs reference %v", fit.Eval(1), ref.Eval(1))
	}
	nat, err := stochsynth.LambdaNatural(stochsynth.NaturalParams{})
	if err != nil {
		t.Fatal(err)
	}
	if nat.Net.NumReactions() == 0 {
		t.Fatal("empty natural model")
	}
}

func TestPublicAPIValidateAndPropensity(t *testing.T) {
	net, err := stochsynth.ParseNetworkString(`a + b -> c @ 2`)
	if err != nil {
		t.Fatal(err)
	}
	issues := stochsynth.Validate(net)
	// a and b are starved (consumed, never produced, zero initial): warnings.
	if len(issues) == 0 {
		t.Fatal("expected warnings")
	}
	st := stochsynth.State{3, 4, 0}
	if got := stochsynth.Propensity(net.Reaction(0), st); got != 24 {
		t.Fatalf("propensity = %v, want 24", got)
	}
}

func TestPublicAPIRNGStreams(t *testing.T) {
	a := stochsynth.NewRNGStream(1, 0)
	b := stochsynth.NewRNGStream(1, 1)
	if a.Uint64() == b.Uint64() {
		t.Fatal("streams correlated")
	}
}

func TestPublicAPIFitLogLin(t *testing.T) {
	ref := stochsynth.LambdaReference()
	var xs, ys []float64
	for x := 1.0; x <= 10; x++ {
		xs = append(xs, x)
		ys = append(ys, ref.Eval(x))
	}
	m, err := stochsynth.FitLogLin(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.A-15) > 1e-6 || math.Abs(m.B-6) > 1e-6 {
		t.Fatalf("fit = %+v", m)
	}
}

func TestPublicAPIDefaultBands(t *testing.T) {
	b := stochsynth.DefaultBands()
	if b.Rate(0) != 1e-3 || b.Rate(3) != 1e6 {
		t.Fatalf("bands = %v %v", b.Rate(0), b.Rate(3))
	}
}

func TestPublicAPIGlue(t *testing.T) {
	net := stochsynth.NewNetwork()
	if err := stochsynth.FanOut(net, "m", []string{"x", "y"}, 100); err != nil {
		t.Fatal(err)
	}
	if err := stochsynth.Assimilation(net, "y", "e1", "e2", 100); err != nil {
		t.Fatal(err)
	}
	if net.NumReactions() != 2 {
		t.Fatal("glue reactions missing")
	}
}
