module stochsynth

go 1.24
